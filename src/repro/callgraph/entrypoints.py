"""Android entry-point detection.

Android apps have no ``main``: execution enters through component lifecycle
methods (``onCreate``, ``onResume``, ...) and callbacks tied to system or
GUI events (``onClick``, ``onReceive``, ...). Section 3.1.3: "in order to
exhaustively identify the usage of WebViews and CTs in an app, we traversed
the app's entire call graph via all entry points".
"""

#: Lifecycle methods per component kind plus common GUI/system callbacks.
LIFECYCLE_METHODS = {
    "activity": (
        "onCreate", "onStart", "onResume", "onPause", "onStop",
        "onRestart", "onDestroy", "onNewIntent", "onActivityResult",
        "onSaveInstanceState", "onRestoreInstanceState",
        "onBackPressed", "onOptionsItemSelected",
    ),
    "service": (
        "onCreate", "onStartCommand", "onBind", "onUnbind", "onRebind",
        "onDestroy",
    ),
    "receiver": ("onReceive",),
    "provider": ("onCreate", "query", "insert", "update", "delete",
                 "getType"),
}

#: GUI/system event callbacks that are entry points on any class
#: (listener implementations, fragments, application subclasses).
CALLBACK_METHODS = frozenset(
    {
        "onClick", "onLongClick", "onTouch", "onKey", "onFocusChange",
        "onItemClick", "onItemSelected", "onMenuItemClick",
        "onPageFinished", "onPageStarted", "onScrollChanged",
        "onCheckedChanged", "onTextChanged", "afterTextChanged",
        "run", "call", "handleMessage", "onPostExecute", "doInBackground",
        "onLowMemory", "onTrimMemory", "onConfigurationChanged",
    }
)

_ALL_LIFECYCLE = frozenset(
    name for names in LIFECYCLE_METHODS.values() for name in names
)


def is_lifecycle_method(method_name):
    """True for lifecycle methods of any component kind."""
    return method_name in _ALL_LIFECYCLE


def is_callback_method(method_name):
    """True for GUI/system event callbacks."""
    return method_name in CALLBACK_METHODS


def entry_point_methods(dex_file, manifest=None):
    """Return (DexClass, DexMethod) entry-point pairs for an app.

    A method is an entry point when:

    - its class is declared as a component in the manifest and the method
      is a lifecycle method for that component kind, or
    - (when no manifest is given) it is any lifecycle method, or
    - it is a recognized GUI/system callback (any class), or
    - its class is a subclass of a manifest-declared component class.
    """
    component_kinds = {}
    if manifest is not None:
        for component in manifest.components:
            component_kinds[component.name] = component.kind

    entry_points = []
    for dex_class, method in dex_file.iter_methods():
        if _is_entry_point(dex_file, dex_class, method, component_kinds,
                           manifest):
            entry_points.append((dex_class, method))
    return entry_points


def _component_kind_for_class(dex_file, class_name, component_kinds):
    """The manifest component kind of a class, following superclasses."""
    for ancestor in dex_file.superclass_chain(class_name):
        if ancestor in component_kinds:
            return component_kinds[ancestor]
    return None


def _is_entry_point(dex_file, dex_class, method, component_kinds, manifest):
    if is_callback_method(method.name):
        return True
    if manifest is None:
        return is_lifecycle_method(method.name)
    kind = _component_kind_for_class(dex_file, dex_class.name, component_kinds)
    if kind is None:
        return False
    return method.name in LIFECYCLE_METHODS.get(kind, ())
