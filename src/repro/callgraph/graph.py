"""Directed call-graph structure with reachability traversal."""

from collections import deque

from repro.errors import CallGraphError


class CallGraph:
    """A directed graph over method nodes.

    Nodes are :class:`~repro.dex.MethodRef`-like keys — we use
    ``(class_name, method_name, descriptor)`` tuples internally, exposed as
    MethodRef objects at the API edge by the builder. Supports O(1) edge
    insertion and BFS reachability, which the pipeline runs from every
    entry point.
    """

    def __init__(self):
        self._successors = {}
        self._predecessors = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node):
        if node not in self._successors:
            self._successors[node] = []
            self._predecessors[node] = []
        return node

    def add_edge(self, caller, callee):
        self.add_node(caller)
        self.add_node(callee)
        self._successors[caller].append(callee)
        self._predecessors[callee].append(caller)

    # -- accessors --------------------------------------------------------------

    @property
    def node_count(self):
        return len(self._successors)

    @property
    def edge_count(self):
        return sum(len(edges) for edges in self._successors.values())

    def nodes(self):
        return iter(self._successors)

    def has_node(self, node):
        return node in self._successors

    def successors(self, node):
        if node not in self._successors:
            raise CallGraphError("unknown node: %r" % (node,))
        return list(self._successors[node])

    def predecessors(self, node):
        if node not in self._predecessors:
            raise CallGraphError("unknown node: %r" % (node,))
        return list(self._predecessors[node])

    def callers_of(self, node):
        """Distinct callers of ``node`` (empty for unknown nodes)."""
        seen = []
        for caller in self._predecessors.get(node, []):
            if caller not in seen:
                seen.append(caller)
        return seen

    # -- traversal ----------------------------------------------------------------

    def reachable_from(self, roots):
        """Return the set of nodes reachable from ``roots`` (inclusive)."""
        visited = set()
        queue = deque()
        for root in roots:
            if root in self._successors and root not in visited:
                visited.add(root)
                queue.append(root)
        while queue:
            node = queue.popleft()
            for successor in self._successors[node]:
                if successor not in visited:
                    visited.add(successor)
                    queue.append(successor)
        return visited

    def path_exists(self, source, target):
        """True if ``target`` is reachable from ``source``."""
        if source not in self._successors:
            return False
        return target in self.reachable_from([source])

    def __repr__(self):
        return "CallGraph(%d nodes, %d edges)" % (
            self.node_count, self.edge_count
        )
