"""Per-bridge attacker models, replayed through the real runtimes.

Two adversaries are evaluated against every bridge the Frida hooks
observe:

* ``sdk`` — the injected-SDK script itself: it already runs in the
  page context, so its capability is whatever the page context yields.
* ``mitm`` — a network man-in-the-middle who can rewrite any
  cleartext-HTTP response (``Url.scheme == "http"`` in the NetLog) and
  thereby plant the same page-context script. Without a cleartext
  visit the MITM never gets a foothold and scores ``none``.

Probes execute against the *real* objects: the app's
:class:`~repro.dynamic.webview_runtime.JsBridge` instances inside a
:class:`~repro.dynamic.webview_runtime.WebViewRuntime`, with the taint
layer (:mod:`repro.web.jsengine`) recording source->sink flows. Custom
Tabs raise :class:`~repro.errors.DeviceError` on every injection
surface, so CT apps correctly score zero.
"""

import contextlib

from repro.dynamic.device import Device
from repro.dynamic.frida import FridaSession
from repro.dynamic.iab import IabKind
from repro.dynamic.measurements import IabMeasurement
from repro.dynamic.webview_runtime import WebViewRuntime
from repro.errors import DeviceError, NetworkError
from repro.impact.severity import SEVERITY_NONE, grade_severity, severity_rank
from repro.netstack.network import Network
from repro.web.html5_testpage import HTML5_TEST_PAGE, TEST_PAGE_URL
from repro.web.jsengine import (
    record_taint_flows,
    taint_labels,
    taint_override,
)
from repro.web.urls import parse_url, parse_url_cached

ATTACKER_SDK = "sdk"
ATTACKER_MITM = "mitm"

#: Evaluation order: the SDK already has page context; the MITM needs a
#: cleartext visit to gain it.
ATTACKERS = (ATTACKER_SDK, ATTACKER_MITM)


def cleartext_urls(urls):
    """The subset of NetLog URLs a MITM can rewrite (cleartext HTTP).

    Only ``http://`` counts — HTTPS visits are integrity-protected.
    Unparseable URLs are skipped (they never left the device).
    """
    exposed = []
    for url_text in urls:
        try:
            url = parse_url_cached(url_text)
        except NetworkError:
            continue
        if url.scheme == "http":
            exposed.append(url_text)
    return exposed


def mitm_exposed(urls):
    """Whether a network log contains at least one MITM-writable visit."""
    return bool(cleartext_urls(urls))


class BridgeFinding:
    """One (app, SDK, bridge, attacker) capability observation.

    Plain picklable record: shards ship findings across the process
    boundary and the parent merges them in selection order.
    """

    __slots__ = ("app", "package", "sdk", "bridge", "attacker", "severity",
                 "readable", "invocable", "flow_count", "methods",
                 "cleartext")

    def __init__(self, app, package, sdk, bridge, attacker, severity,
                 readable=(), invocable=(), flow_count=0, methods=(),
                 cleartext=False):
        self.app = app
        self.package = package
        self.sdk = sdk
        self.bridge = bridge
        self.attacker = attacker
        self.severity = severity
        #: Sorted read-channel kinds (e.g. ("cookie", "dom", "webapi")).
        self.readable = tuple(readable)
        #: Bridge methods the attacker successfully invoked.
        self.invocable = tuple(invocable)
        #: Observed source->sink taint flows during the probe.
        self.flow_count = flow_count
        #: The bridge's exposed method list (from the Frida hooks).
        self.methods = tuple(methods)
        #: Whether the app's network log was MITM-writable.
        self.cleartext = cleartext

    @property
    def rank(self):
        return severity_rank(self.severity)

    def __repr__(self):
        return "BridgeFinding(%s/%s %s: %s)" % (
            self.app, self.bridge, self.attacker, self.severity
        )


class AppImpact:
    """Everything the probe learned about one app (picklable)."""

    __slots__ = ("app", "package", "kind", "cleartext_count", "findings")

    def __init__(self, app, package, kind, cleartext_count=0, findings=()):
        self.app = app
        self.package = package
        #: "webview" | "custom_tab" | "browser" | "synthetic"
        self.kind = kind
        self.cleartext_count = cleartext_count
        self.findings = list(findings)

    def __repr__(self):
        return "AppImpact(%s, %s, %d findings)" % (
            self.app, self.kind, len(self.findings)
        )


def _sdk_label(bridge_name, bridge_methods):
    """Attribute a bridge to an SDK, reusing the Table 8 heuristics
    (name markers first, then the exposed-method fallback)."""
    shim = IabMeasurement(None)
    shim.injected_bridges = [bridge_name]
    shim.injected_bridge_methods = {bridge_name: tuple(bridge_methods)}
    return shim.inferred_bridge_intents()[0]


_READ_PROBES = (
    ("cookie", "document.cookie"),
    ("dom", "document.body.textContent"),
    ("webapi", "navigator.userAgent"),
)

#: The exfiltration payload planted by the attacker page script: read
#: every secret channel, then push the blob through the bridge method.
_EXFIL_PROBE = (
    "var __secret = '' + document.cookie + '|' + navigator.userAgent;\n"
    "%(bridge)s.%(method)s('probe:' + __secret);"
)


def _probe_page_context(runtime, bridge_name, methods):
    """Run the page-context attacker against one bridge.

    Returns ``(readable, invocable, flow_count)``: the read channels
    that yielded tainted values, the methods whose invocation registered
    on the real bridge object, and the taint flows observed into bridge
    sinks. Raises DeviceError when the runtime offers no JS surface
    (Custom Tabs).
    """
    readable = []
    for kind, expression in _READ_PROBES:
        value = runtime.evaluateJavascript(expression)
        if taint_labels(value):
            readable.append(kind)
    bridge = runtime.js_bridges.get(bridge_name)
    invocable = []
    flows = []
    with record_taint_flows(flows):
        for method in methods:
            before = len(bridge.invocations) if bridge is not None else 0
            runtime.evaluateJavascript(_EXFIL_PROBE % {
                "bridge": bridge_name, "method": method,
            })
            after = len(bridge.invocations) if bridge is not None else 0
            if after > before:
                invocable.append(method)
    flow_count = sum(
        1 for sink, _labels in flows
        if sink[0] in ("bridge_arg", "network")
    )
    return tuple(sorted(readable)), tuple(invocable), flow_count


def probe_app(app, seed=0, tracer=None):
    """Evaluate both attackers against every bridge of one app.

    Deterministic: a fresh simulated device/network per app (the
    measurement-harness pattern), taint instrumentation forced on for
    the probes only, findings emitted in bridge registration order with
    the SDK attacker before the MITM.
    """
    kind = getattr(app, "iab_kind", None)
    if kind is None:
        # Synthetic corpus filler: no IAB, no bridges, nothing to score.
        return AppImpact(app.name, app.package, "synthetic")
    if kind == IabKind.BROWSER:
        return AppImpact(app.name, app.package, "browser")
    if kind == IabKind.CUSTOM_TAB:
        return _probe_custom_tab(app, seed)
    return _probe_webview(app, seed, tracer)


def _probe_custom_tab(app, seed):
    """CT apps: attempt the injection surface, expect the wall.

    The probe genuinely exercises the boundary — every injection entry
    point must raise DeviceError — and the app scores zero findings.
    """
    device = _fresh_device(seed)
    device.install(app)
    event = app.open_link(device, TEST_PAGE_URL)
    runtime = event.runtime
    for attempt in (
        lambda: runtime.evaluateJavascript("document.cookie"),
        lambda: runtime.addJavascriptInterface(None, "probe"),
        lambda: runtime.get_dom(),
    ):
        try:
            attempt()
        except DeviceError:
            continue
        raise AssertionError(
            "Custom Tab runtime exposed an injection surface"
        )
    cleartext = cleartext_urls(runtime.netlog.urls())
    return AppImpact(app.name, app.package, "custom_tab",
                     cleartext_count=len(cleartext))


def _probe_webview(app, seed, tracer=None):
    """The full WebView probe: open the controlled page, let the app
    inject, then drive each observed bridge as both attackers."""
    with taint_override(True):
        device = _fresh_device(seed)
        device.install(app)
        runtime = WebViewRuntime(app.package, device)
        frida = FridaSession().attach(runtime)
        app.open_link(device, TEST_PAGE_URL, runtime=runtime)

        bridge_methods = frida.injected_bridge_methods()
        cleartext = cleartext_urls(runtime.netlog.urls())
        exposed = bool(cleartext)
        impact = AppImpact(app.name, app.package, "webview",
                           cleartext_count=len(cleartext))
        for bridge_name, methods in bridge_methods.items():
            if tracer is not None:
                span_cm = tracer.span("probe", bridge=bridge_name)
            else:
                span_cm = _null_cm()
            with span_cm:
                readable, invocable, flow_count = _probe_page_context(
                    runtime, bridge_name, methods
                )
            sdk = _sdk_label(bridge_name, methods)
            impact.findings.append(BridgeFinding(
                app.name, app.package, sdk, bridge_name, ATTACKER_SDK,
                grade_severity(readable, invocable, flow_count),
                readable=readable, invocable=invocable,
                flow_count=flow_count, methods=methods,
                cleartext=exposed,
            ))
            # The MITM inherits the page context only when a cleartext
            # visit gives them a page to rewrite.
            if exposed:
                impact.findings.append(BridgeFinding(
                    app.name, app.package, sdk, bridge_name, ATTACKER_MITM,
                    grade_severity(readable, invocable, flow_count),
                    readable=readable, invocable=invocable,
                    flow_count=flow_count, methods=methods,
                    cleartext=True,
                ))
            else:
                impact.findings.append(BridgeFinding(
                    app.name, app.package, sdk, bridge_name, ATTACKER_MITM,
                    SEVERITY_NONE, methods=methods, cleartext=False,
                ))
        return impact


def _fresh_device(seed):
    network = Network(seed=seed, strict=False)
    host = parse_url(TEST_PAGE_URL).host
    network.register_host(
        host, lambda path: HTML5_TEST_PAGE.encode("utf-8")
    )
    return Device(network=network)


@contextlib.contextmanager
def _null_cm():
    yield None
