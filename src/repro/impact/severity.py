"""The severity taxonomy for bridge findings.

A deterministic total order over what an attacker was observed to do
with one bridge:

``none``
    The attacker reaches nothing: no page context at all (Custom Tabs),
    or a MITM facing an all-HTTPS network log.
``leak``
    The attacker can *read* device/app state from the page context
    (cookies, DOM text, Web API surface) but could not drive the bridge.
``invoke``
    The attacker can additionally *invoke* bridge methods — crossing
    from page JS into app/Java code.
``exfiltrate``
    A taint flow from a secret source into a bridge argument or a
    network-visible URL was actually observed: read + invoke + carry
    the secret out.
"""

SEVERITY_NONE = "none"
SEVERITY_LEAK = "leak"
SEVERITY_INVOKE = "invoke"
SEVERITY_EXFILTRATE = "exfiltrate"

#: Ascending capability order; ranks index into this tuple.
SEVERITY_ORDER = (
    SEVERITY_NONE, SEVERITY_LEAK, SEVERITY_INVOKE, SEVERITY_EXFILTRATE,
)

_RANKS = {severity: rank for rank, severity in enumerate(SEVERITY_ORDER)}


def severity_rank(severity):
    """The numeric rank of a severity (``none`` = 0 ... ``exfiltrate`` = 3)."""
    return _RANKS[severity]


def grade_severity(readable, invocable, flow_count):
    """Grade one (attacker, bridge) observation.

    ``readable``/``invocable`` are the observed read channels and
    callable methods; ``flow_count`` is the number of source->sink taint
    flows recorded during the probe. Pure and total: the same inputs
    always grade the same.
    """
    if flow_count:
        return SEVERITY_EXFILTRATE
    if invocable:
        return SEVERITY_INVOKE
    if readable:
        return SEVERITY_LEAK
    return SEVERITY_NONE
