"""Injection impact analysis: what can an in-app-browser injection *do*?

The paper classifies injection *intent* (Table 8); this subsystem
measures injection *capability*. The taint layer in
:mod:`repro.web.jsengine` observes flows from secret sources (bridge
returns, ``document.cookie``, DOM text, Web API reads) into sinks
(bridge method arguments, network-visible URLs); the attacker models in
:mod:`repro.impact.attacker` replay probes through the real
:class:`~repro.dynamic.webview_runtime.JsBridge` objects for two
adversaries — the injected-SDK script itself and a network MITM who can
rewrite any cleartext-HTTP visit; and :mod:`repro.impact.census` grades
every (app, SDK, bridge) on the none < leak < invoke < exfiltrate
severity scale across the top-1K IAB corpus, sharded over the exec
layer with byte-identical results at any worker count, backend, and
streaming setting.
"""

from repro.impact.attacker import (
    ATTACKER_MITM,
    ATTACKER_SDK,
    AppImpact,
    BridgeFinding,
    cleartext_urls,
    mitm_exposed,
    probe_app,
)
from repro.impact.census import (
    ImpactCensus,
    ImpactResult,
    ImpactShard,
    ImpactStreamPlan,
)
from repro.impact.severity import (
    SEVERITY_EXFILTRATE,
    SEVERITY_INVOKE,
    SEVERITY_LEAK,
    SEVERITY_NONE,
    SEVERITY_ORDER,
    grade_severity,
    severity_rank,
)

__all__ = [
    "ATTACKER_MITM",
    "ATTACKER_SDK",
    "AppImpact",
    "BridgeFinding",
    "ImpactCensus",
    "ImpactResult",
    "ImpactShard",
    "ImpactStreamPlan",
    "SEVERITY_EXFILTRATE",
    "SEVERITY_INVOKE",
    "SEVERITY_LEAK",
    "SEVERITY_NONE",
    "SEVERITY_ORDER",
    "cleartext_urls",
    "grade_severity",
    "mitm_exposed",
    "probe_app",
    "severity_rank",
]
