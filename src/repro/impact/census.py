"""The injection-impact severity census over the top-1K IAB corpus.

One shard per app, exactly the crawler's discipline
(:mod:`repro.dynamic.crawler`): every shard runs against a fresh
per-shard tracer with a deterministic tick clock, exports its span
tree, and ships picklable findings back to the parent, which merges
them — and records every metric — in app selection order. The census is
therefore byte-identical at any worker count, on both exec backends,
and with the streaming DAG scheduler on or off.

The ranking tables order SDKs by injection *capability* (highest
severity reached, then how often), not by how many injections were
counted — the distinction the paper's Table 8 cannot make.
"""

import contextlib
import functools
import time

from repro.dynamic.manual_study import ManualStudy
from repro.exec import (
    ExecConfig,
    StreamScheduler,
    StreamStage,
    WORKER_LOST_SLUG,
    make_pool,
    simulate_schedule,
    stage_schedule_view,
)
from repro.exec.config import CHUNK_SIZE_ENV_VAR, _env_int
from repro.impact.attacker import probe_app
from repro.impact.severity import SEVERITY_ORDER, severity_rank
from repro.obs import (
    DROPS_METRIC,
    EXEC_BACKEND_METRIC,
    EXEC_CHUNK_SIZE_METRIC,
    EXEC_CHUNKS_REPAIRED_METRIC,
    EXEC_CRITICAL_PATH_METRIC,
    EXEC_QUEUE_DEPTH_METRIC,
    EXEC_STEALS_METRIC,
    EXEC_TASKS_METRIC,
    EXEC_TASKS_QUARANTINED_METRIC,
    EXEC_WORKER_BUSY_METRIC,
    EXEC_WORKERS_METRIC,
    IMPACT_APPS_METRIC,
    IMPACT_BRIDGES_METRIC,
    IMPACT_CLEARTEXT_METRIC,
    IMPACT_FINDINGS_METRIC,
    IMPACT_FLOWS_METRIC,
    Span,
    TickClock,
    Tracer,
    bind_context,
    default_obs,
    get_logger,
    use_tracer,
)
from repro.reporting import Table

#: Impact shards are whole apps, like crawl shards.
DEFAULT_IMPACT_CHUNK_SIZE = 1


class ImpactShard:
    """One per-app unit of probe work shipped to a worker."""

    __slots__ = ("position", "app")

    def __init__(self, position, app):
        self.position = position
        self.app = app


class _ImpactSettings:
    """Picklable knobs shipped to every shard invocation."""

    __slots__ = ("seed", "real_clock")

    def __init__(self, seed, real_clock=False):
        self.seed = seed
        self.real_clock = real_clock


class ImpactShardOutcome:
    """One app shard's probe results, merged in selection order."""

    __slots__ = ("position", "package", "record", "cost", "spans", "worker")

    def __init__(self, position, package):
        self.position = position
        self.package = package
        #: The shard's :class:`~repro.impact.attacker.AppImpact`, or
        #: None for a quarantined shard.
        self.record = None
        self.cost = 0.0
        self.spans = None
        self.worker = None


def _run_impact_shard(settings, shard):
    """Pool entry point: probe both attackers against one app.

    Identical inline and in a worker process: fresh tracer, fresh
    deterministic TickClock (unless a real clock was injected), fresh
    simulated device per app.
    """
    app = shard.app
    clock = time.perf_counter if settings.real_clock else TickClock()
    tracer = Tracer(clock=clock)
    outcome = ImpactShardOutcome(shard.position, app.package)
    with use_tracer(tracer), \
            bind_context(stage="impact", package=app.package):
        with tracer.span("impact_app", app=app.name) as root:
            outcome.record = probe_app(app, seed=settings.seed,
                                       tracer=tracer)
    outcome.cost = root.duration
    outcome.spans = [root.to_dict()]
    return outcome


class ImpactResult:
    """All per-app impact records, in selection order."""

    def __init__(self, records):
        self.records = list(records)

    @property
    def findings(self):
        """Every bridge finding, in selection order."""
        return [finding for record in self.records
                for finding in record.findings]

    def severity_counts(self):
        """(attacker, severity) -> finding count, dict in a fixed order."""
        counts = {}
        for attacker in ("sdk", "mitm"):
            for severity in SEVERITY_ORDER:
                counts[(attacker, severity)] = 0
        for finding in self.findings:
            counts[(finding.attacker, finding.severity)] += 1
        return counts

    def sdk_capability_ranking(self):
        """SDKs ranked by injection capability.

        Sort key: highest severity reached (descending), then the count
        of findings at each severity rung (descending, worst first),
        then the SDK label — so an SDK with one ``exfiltrate`` outranks
        one with many ``invoke``, which is the point of the census.
        Returns ``[(sdk, max_severity, {severity: count})]``.
        """
        per_sdk = {}
        for finding in self.findings:
            counts = per_sdk.setdefault(
                finding.sdk, dict.fromkeys(SEVERITY_ORDER, 0)
            )
            counts[finding.severity] += 1
        ranked = sorted(
            per_sdk.items(),
            key=lambda item: (
                tuple(-item[1][severity]
                      for severity in reversed(SEVERITY_ORDER)),
                item[0],
            ),
        )
        result = []
        for sdk, counts in ranked:
            reached = max(
                (severity for severity in SEVERITY_ORDER
                 if counts[severity]),
                key=severity_rank, default=SEVERITY_ORDER[0],
            )
            result.append((sdk, reached, counts))
        return result

    def census_table(self):
        """The severity census as a reporting table."""
        table = Table(
            ["attacker", "severity", "findings"],
            title="Injection impact census",
        )
        for (attacker, severity), count in self.severity_counts().items():
            table.add_row(attacker, severity, count)
        return table

    def ranking_table(self):
        """The SDK capability ranking as a reporting table."""
        table = Table(
            ["rank", "sdk", "capability"] + list(SEVERITY_ORDER),
            title="SDKs by injection capability",
        )
        for position, (sdk, reached, counts) in enumerate(
            self.sdk_capability_ranking(), start=1
        ):
            table.add_row(position, sdk, reached,
                          *[counts[s] for s in SEVERITY_ORDER])
        return table


class ImpactCensus:
    """Probes every app in the corpus, sharded per app."""

    def __init__(self, apps=None, seed=0, obs=None, exec_config=None):
        if apps is None:
            apps = ManualStudy(seed=seed).apps()
        self.apps = list(apps)
        self.seed = seed
        self.obs = obs if obs is not None else default_obs()
        if exec_config is None:
            exec_config = ExecConfig(chunk_size=_env_int(
                CHUNK_SIZE_ENV_VAR, DEFAULT_IMPACT_CHUNK_SIZE
            ))
        self.exec_config = exec_config
        self.log = get_logger("impact.census")
        self._execute_span = None
        self._replayed_roots = {}
        self._apps_metric = self.obs.counter(
            IMPACT_APPS_METRIC, "Apps probed by the impact census.",
            ("kind",),
        )
        self._bridges_metric = self.obs.counter(
            IMPACT_BRIDGES_METRIC, "Bridges probed by the impact census.",
        )
        self._findings_metric = self.obs.counter(
            IMPACT_FINDINGS_METRIC,
            "Bridge findings recorded, by severity.", ("severity",),
        )
        self._flows_metric = self.obs.counter(
            IMPACT_FLOWS_METRIC,
            "Source->sink taint flows observed during probes.",
        )
        self._cleartext_metric = self.obs.counter(
            IMPACT_CLEARTEXT_METRIC,
            "Cleartext-HTTP (MITM-writable) visits in probe NetLogs.",
        )

    def run(self, progress=None):
        """Run the census; returns an :class:`ImpactResult`."""
        if self.exec_config.streaming:
            return self.run_streaming(progress)
        with self.obs.activate(), bind_context(stage="impact"), \
                self.obs.span("impact", apps=len(self.apps)):
            return self._run(progress)

    def run_streaming(self, progress=None):
        """Run the census on the streaming scheduler (same result bytes)."""
        plan = self.stream_plan(progress=progress)
        scheduler = StreamScheduler(self.exec_config, log=self.log)
        scheduler.run([plan.stage])
        return plan.finalize(scheduler)

    def stream_plan(self, progress=None):
        """Open a streaming census; see :class:`ImpactStreamPlan`."""
        return ImpactStreamPlan(self, progress=progress)

    def _shard_list(self):
        shards = [ImpactShard(position, app)
                  for position, app in enumerate(self.apps)]
        return list(self.apps), shards

    def _run(self, progress):
        apps, shards = self._shard_list()
        outcomes = self._run_shards(shards, progress)
        schedule = simulate_schedule([o.cost for o in outcomes],
                                     self.exec_config.max_workers,
                                     self.exec_config.chunk_size)
        for outcome, worker in zip(outcomes, schedule.assignments):
            outcome.worker = worker
        self._record_exec_metrics(outcomes, schedule)
        records = []
        for app, outcome in zip(apps, outcomes):
            self._merge_shard(app, outcome, records)
        self.log.info("census_complete", apps=len(records),
                      findings=sum(len(r.findings) for r in records),
                      workers=self.exec_config.max_workers)
        return ImpactResult(records)

    def _shard_fn(self):
        settings = _ImpactSettings(
            self.seed,
            real_clock=not isinstance(self.obs.clock, TickClock),
        )
        return functools.partial(_run_impact_shard, settings)

    def _run_shards(self, shards, progress):
        pool = make_pool(self.exec_config, log=self.log)
        fn = self._shard_fn()
        with self.obs.span("execute", backend=pool.name,
                           workers=self.exec_config.max_workers,
                           shards=len(shards)) as execute_span:
            self._execute_span = execute_span
            if hasattr(progress, "begin"):
                progress.begin(len(shards))
            outcomes = pool.map(shards, fn, on_result=progress)
        if pool.repaired_chunks:
            self.obs.counter(
                EXEC_CHUNKS_REPAIRED_METRIC,
                "Chunks re-run after losing their worker mid-flight.",
            ).inc(pool.repaired_chunks)
        return outcomes

    def _merge_shard(self, app, outcome, records):
        """Fold one shard into the census (selection order)."""
        with bind_context(package=app.package):
            self._replay_shard_spans(outcome)
        record = outcome.record
        if record is None:
            return
        records.append(record)
        self._apps_metric.labels(kind=record.kind).inc()
        if record.cleartext_count:
            self._cleartext_metric.inc(record.cleartext_count)
        bridges = {finding.bridge for finding in record.findings}
        if bridges:
            self._bridges_metric.inc(len(bridges))
        for finding in record.findings:
            self._findings_metric.labels(severity=finding.severity).inc()
            if finding.flow_count:
                self._flows_metric.inc(finding.flow_count)

    def _replay_shard_spans(self, outcome):
        """Attach a shard's exported span tree to the census tracer."""
        tracer = self.obs.tracer
        for data in outcome.spans:
            root = Span.from_dict(data)
            if outcome.worker is not None:
                root.set_attribute("worker", "w%d" % outcome.worker)
            else:
                self._replayed_roots.setdefault(outcome.position,
                                                []).append(root)
            parent = self._execute_span or tracer.current()
            if parent is not None:
                parent.children.append(root)
            else:
                tracer.roots.append(root)
            if tracer.on_span_end is not None:
                for span in root.iter_spans():
                    tracer.on_span_end(span)

    # -- streaming execution -----------------------------------------------

    def _stage_context(self):
        @contextlib.contextmanager
        def enter():
            with self.obs.activate(), bind_context(stage="impact"):
                yield
        return enter

    def _lost_shard(self, shard):
        """Quarantine outcome for a shard whose workers kept dying."""
        self.obs.counter(
            DROPS_METRIC,
            "Apps dropped before successful analysis, by reason.",
            ("reason",),
        ).labels(reason=WORKER_LOST_SLUG).inc()
        self.log.warning("shard_lost", app=shard.app.package,
                         attempts=self.exec_config.max_attempts)
        outcome = ImpactShardOutcome(shard.position, shard.app.package)
        outcome.spans = []
        return outcome

    def _assign_workers(self, executed, workers):
        for outcome, worker in zip(executed, workers):
            outcome.worker = worker
            for root in self._replayed_roots.pop(outcome.position, ()):
                root.set_attribute("worker", "w%d" % worker)

    def _record_stream_metrics(self, scheduler, schedule):
        self.obs.counter(
            EXEC_STEALS_METRIC,
            "Work-steal events in the simulated streamed schedule.",
        ).inc(schedule.steals)
        self.obs.counter(
            EXEC_CHUNKS_REPAIRED_METRIC,
            "Chunks re-run after losing their worker mid-flight.",
        ).inc(scheduler.repaired_chunks)
        self.obs.counter(
            EXEC_TASKS_QUARANTINED_METRIC,
            "Tasks dropped as worker_lost after the retry budget.",
        ).inc(scheduler.quarantined_tasks)

    def _record_exec_metrics(self, outcomes, schedule):
        """Deterministic execution metrics for the run report."""
        config = self.exec_config
        self.obs.gauge(
            EXEC_WORKERS_METRIC, "Configured worker count.",
        ).set(config.max_workers)
        self.obs.gauge(
            EXEC_CHUNK_SIZE_METRIC, "Tasks per worker dispatch.",
        ).set(config.chunk_size)
        self.obs.gauge(
            EXEC_BACKEND_METRIC, "Resolved execution backend (info).",
            ("backend",),
        ).labels(backend=config.resolved_backend).set(1)
        shard_count = len(outcomes)
        chunks = -(-shard_count // config.chunk_size) if shard_count else 0
        self.obs.gauge(
            EXEC_QUEUE_DEPTH_METRIC,
            "High-water mark of chunks in the bounded work queue.",
        ).set(min(config.window, chunks))
        tasks = self.obs.counter(
            EXEC_TASKS_METRIC, "Per-app tasks, by outcome.", ("status",),
        )
        for _ in outcomes:
            tasks.labels(status="ok").inc()
        busy = self.obs.counter(
            EXEC_WORKER_BUSY_METRIC,
            "Clock units each worker spent analyzing apps.",
            ("worker",),
        )
        for worker, amount in enumerate(schedule.worker_busy):
            if amount:
                busy.labels(worker="w%d" % worker).inc(amount)
        self.obs.gauge(
            EXEC_CRITICAL_PATH_METRIC,
            "Makespan of the (simulated greedy) worker schedule.",
        ).set(schedule.critical_path)

    def run_report(self):
        """The census's run report (includes the Injection impact table)."""
        return self.obs.run_report(
            "Injection impact census", items_label="apps",
            items_count=len(self.apps), root_span="impact",
        )


class ImpactStreamPlan:
    """One census's opened streaming run (the crawl-plan pattern)."""

    def __init__(self, census, progress=None):
        self.census = census
        self.records = []
        self.executed = []
        self._ctx = census._stage_context()
        census._replayed_roots.clear()
        with self._ctx():
            self._impact_cm = census.obs.span(
                "impact", apps=len(census.apps)
            )
            self.impact_span = self._impact_cm.__enter__()
            self.apps, shards = census._shard_list()
            self.stage = StreamStage(
                "impact", shards, census._shard_fn(),
                on_lost=census._lost_shard,
                chunk_size=census.exec_config.chunk_size,
                context=self._ctx,
            )
            self.stage.consume_ordered(self._on_ordered)
            self.stage.consume(progress)
            self._execute_cm = census.obs.span(
                "execute", backend=census.exec_config.resolved_backend,
                workers=census.exec_config.max_workers, shards=len(shards),
            )
            self.execute_span = self._execute_cm.__enter__()
            census._execute_span = self.execute_span
            if hasattr(progress, "begin"):
                progress.begin(len(shards))

    def _on_ordered(self, index, outcome):
        self.executed.append(outcome)
        self.census._merge_shard(self.apps[index], outcome, self.records)

    def costs(self):
        return [outcome.cost for outcome in self.executed]

    def finalize(self, scheduler, schedule=None, assignments=None):
        """Close the run: schedule replay, metrics, spans. Returns result."""
        census = self.census
        with self._ctx():
            self._execute_cm.__exit__(None, None, None)
            if schedule is None:
                schedule, per_stage = scheduler.simulate([self.costs()])
                assignments = per_stage[0]
            census._assign_workers(self.executed, assignments)
            view = stage_schedule_view(census.exec_config, assignments,
                                       self.costs(), schedule)
            census._record_exec_metrics(self.executed, view)
            census._record_stream_metrics(scheduler, schedule)
            census.log.info(
                "census_complete", apps=len(self.records),
                findings=sum(len(r.findings) for r in self.records),
                workers=census.exec_config.max_workers,
            )
            self._impact_cm.__exit__(None, None, None)
        return ImpactResult(self.records)
