"""AndroZoo-like APK repository substrate."""

from repro.androzoo.repository import (
    AndroZooRepository,
    IndexRow,
    Snapshot,
    SnapshotDelta,
    diff_snapshots,
)

__all__ = [
    "AndroZooRepository",
    "IndexRow",
    "Snapshot",
    "SnapshotDelta",
    "diff_snapshots",
]
