"""AndroZoo-like APK repository substrate."""

from repro.androzoo.repository import AndroZooRepository, IndexRow, Snapshot

__all__ = ["AndroZooRepository", "IndexRow", "Snapshot"]
