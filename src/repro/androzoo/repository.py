"""An AndroZoo-like repository of APKs (Allix et al. [39]).

AndroZoo periodically crawls app stores and archives every APK version it
sees, indexed by SHA-256 with metadata (package name, version code, dex
date, markets). The paper uses the January 13, 2023 snapshot to enumerate
Play-Store apps and to download each selected app's most recent APK.

APK payloads may be stored eagerly (bytes) or lazily (a zero-argument
callable producing bytes), so corpus generation can defer the expensive
APK synthesis until the pipeline actually downloads the app.
"""

import datetime

from repro.errors import RepositoryError
from repro.util import sha256_hex

PLAY_MARKET = "play.google.com"


class IndexRow:
    """One archived APK version, as a row of the AndroZoo index CSV."""

    def __init__(self, sha256, package, version_code, dex_date, markets,
                 apk_size=0):
        self.sha256 = sha256
        self.package = package
        self.version_code = int(version_code)
        # Normalize to datetime.date: the index CSV carries bare dates,
        # but callers also hand in datetimes (datetime is a *subclass*
        # of date, so the subclass check must come first). Mixing the
        # two would make snapshot(date) comparisons raise TypeError.
        if isinstance(dex_date, str):
            dex_date = datetime.date.fromisoformat(dex_date)
        elif isinstance(dex_date, datetime.datetime):
            dex_date = dex_date.date()
        self.dex_date = dex_date
        self.markets = tuple(markets)
        self.apk_size = apk_size

    @property
    def from_play_store(self):
        return PLAY_MARKET in self.markets

    def __repr__(self):
        return "IndexRow(%s v%d, %s)" % (
            self.package, self.version_code, self.dex_date
        )


class Snapshot:
    """A dated, immutable view of the repository index.

    Rows are stored in a canonical ``(package, version_code, sha256)``
    order regardless of generator insertion order, so snapshot listings,
    diffs and resumed runs iterate identically no matter how the index
    was assembled.
    """

    def __init__(self, date, rows):
        self.date = date
        self.rows = tuple(sorted(
            rows, key=lambda row: (row.package, row.version_code, row.sha256)
        ))
        self._latest = {}

    def packages(self, market=None):
        """Distinct package names, optionally restricted to one market."""
        seen = set()
        ordered = []
        for row in self.rows:
            if market is not None and market not in row.markets:
                continue
            if row.package not in seen:
                seen.add(row.package)
                ordered.append(row.package)
        return ordered

    def latest_rows(self, market=None):
        """package -> most recent archived row, in one pass (memoized).

        The winner per package is the highest ``(version_code,
        dex_date)`` pair; the canonical row order breaks any remaining
        ties by sha256.
        """
        cached = self._latest.get(market)
        if cached is None:
            cached = {}
            for row in self.rows:
                if market is not None and market not in row.markets:
                    continue
                best = cached.get(row.package)
                if best is None or (row.version_code, row.dex_date) >= (
                    best.version_code, best.dex_date
                ):
                    cached[row.package] = row
            self._latest[market] = cached
        return cached

    def latest_version(self, package, market=None):
        """The most recent archived row for ``package`` (None if absent).

        With ``market=``, only rows archived from that market are
        considered — the pipeline restricts to the Play market so a
        newer sideloaded/alternative-market archive of the same package
        can never win the version pick.
        """
        return self.latest_rows(market).get(package)

    def __len__(self):
        return len(self.rows)


class SnapshotDelta:
    """The package-level difference between two dated snapshots.

    Computed over each package's *latest* archived row (the version the
    pipeline would download), so an app counts as ``updated`` exactly
    when a re-run would fetch a different APK. Every bucket holds sorted
    package names; ``new_rows`` maps each added/updated package to the
    row the newer snapshot would analyze.
    """

    def __init__(self, old, new, added, updated, removed, unchanged,
                 new_rows):
        self.old = old
        self.new = new
        self.added = added
        self.updated = updated
        self.removed = removed
        self.unchanged = unchanged
        self.new_rows = new_rows

    @property
    def changed(self):
        """Packages whose APK a fresh run must (re-)analyze."""
        return self.added + self.updated

    def counts(self):
        return {
            "added": len(self.added),
            "updated": len(self.updated),
            "removed": len(self.removed),
            "unchanged": len(self.unchanged),
        }

    def __repr__(self):
        return "SnapshotDelta(+%d ~%d -%d =%d)" % (
            len(self.added), len(self.updated), len(self.removed),
            len(self.unchanged),
        )


def diff_snapshots(old, new, market=PLAY_MARKET):
    """Diff two snapshots into added / updated / removed / unchanged.

    ``old`` may be None for a cold start, in which case every package in
    ``new`` is added. The delta is what the longitudinal planner feeds
    the scheduler: only added/updated packages need analysis, everything
    unchanged is carried forward from the prior run.
    """
    old_latest = old.latest_rows(market) if old is not None else {}
    new_latest = new.latest_rows(market)
    added, updated, removed, unchanged = [], [], [], []
    new_rows = {}
    for package in sorted(new_latest):
        row = new_latest[package]
        prior = old_latest.get(package)
        if prior is None:
            added.append(package)
            new_rows[package] = row
        elif prior.sha256 != row.sha256:
            updated.append(package)
            new_rows[package] = row
        else:
            unchanged.append(package)
    for package in sorted(old_latest):
        if package not in new_latest:
            removed.append(package)
    return SnapshotDelta(old, new, added, updated, removed, unchanged,
                         new_rows)


class AndroZooRepository:
    """The repository: index rows plus APK payload storage."""

    def __init__(self):
        self._rows = []
        self._payloads = {}
        self.downloads_served = 0

    def archive(self, package, version_code, dex_date, payload,
                markets=(PLAY_MARKET,)):
        """Archive one APK version.

        ``payload`` is APK bytes or a zero-argument callable returning
        bytes (lazy synthesis). The SHA-256 key is derived from the
        package identity for lazy payloads so archiving stays cheap.
        """
        if callable(payload):
            sha256 = sha256_hex(
                ("%s:%d" % (package, version_code)).encode("utf-8")
            )
            size = 0
        else:
            sha256 = sha256_hex(payload)
            size = len(payload)
        row = IndexRow(sha256, package, version_code, dex_date, markets, size)
        self._rows.append(row)
        self._payloads[sha256] = payload
        return row

    def snapshot(self, date=None):
        """Return a dated :class:`Snapshot`: rows with ``dex_date <= date``.

        A snapshot is a historical view of the index — rows archived
        after the snapshot date must not leak into its listing.
        """
        if isinstance(date, str):
            date = datetime.date.fromisoformat(date)
        if date is None:
            date = datetime.date(2023, 1, 13)
        rows = [row for row in self._rows if row.dex_date <= date]
        return Snapshot(date, rows)

    def download(self, sha256):
        """Fetch APK bytes by SHA-256 (resolving lazy payloads)."""
        if sha256 not in self._payloads:
            raise RepositoryError("unknown sha256: %s" % sha256)
        payload = self._payloads[sha256]
        if callable(payload):
            payload = payload()
            self._payloads[sha256] = payload
        self.downloads_served += 1
        return payload

    def __len__(self):
        return len(self._rows)
