"""A minimal ZIP archive writer/reader implemented from scratch.

Supports the subset of the ZIP specification that APKs rely on: local file
headers, a central directory, the end-of-central-directory record, and the
*stored* (0) and *deflate* (8) compression methods. Output is readable by
standard tools; the reader locates entries via the central directory, as real
extractors (and Android itself) do, and verifies CRC-32 checksums.
"""

import struct
import zlib

from repro.errors import ApkError

_LOCAL_SIG = 0x04034B50
_CENTRAL_SIG = 0x02014B50
_EOCD_SIG = 0x06054B50

_LOCAL_HEADER = struct.Struct("<IHHHHHIIIHH")
_CENTRAL_HEADER = struct.Struct("<IHHHHHHIIIHHHHHII")
_EOCD = struct.Struct("<IHHHHIIH")

STORED = 0
DEFLATED = 8


class ZipEntry:
    """One archive member: name, raw data, and compression method."""

    __slots__ = ("name", "data", "method", "crc32")

    def __init__(self, name, data, method=DEFLATED):
        if method not in (STORED, DEFLATED):
            raise ApkError("unsupported compression method: %r" % (method,))
        self.name = name
        self.data = data
        self.method = method
        self.crc32 = zlib.crc32(data) & 0xFFFFFFFF

    def __repr__(self):
        return "ZipEntry(%r, %d bytes)" % (self.name, len(self.data))


class ZipWriter:
    """Serializes entries into a ZIP archive byte string."""

    def __init__(self):
        self._entries = []

    def add(self, name, data, method=DEFLATED):
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._entries.append(ZipEntry(name, data, method))
        return self

    def getvalue(self):
        chunks = []
        offset = 0
        central_records = []
        for entry in self._entries:
            name_bytes = entry.name.encode("utf-8")
            if entry.method == DEFLATED:
                compressor = zlib.compressobj(6, zlib.DEFLATED, -15)
                payload = compressor.compress(entry.data) + compressor.flush()
            else:
                payload = entry.data
            local = _LOCAL_HEADER.pack(
                _LOCAL_SIG,
                20,              # version needed
                0,               # flags
                entry.method,
                0, 0,            # dos time/date (zeroed: deterministic output)
                entry.crc32,
                len(payload),
                len(entry.data),
                len(name_bytes),
                0,               # extra length
            )
            chunks.append(local)
            chunks.append(name_bytes)
            chunks.append(payload)
            central_records.append((entry, name_bytes, payload, offset))
            offset += len(local) + len(name_bytes) + len(payload)

        central_start = offset
        central_size = 0
        for entry, name_bytes, payload, local_offset in central_records:
            record = _CENTRAL_HEADER.pack(
                _CENTRAL_SIG,
                20,              # version made by
                20,              # version needed
                0,               # flags
                entry.method,
                0, 0,            # dos time/date
                entry.crc32,
                len(payload),
                len(entry.data),
                len(name_bytes),
                0,               # extra length
                0,               # comment length
                0,               # disk number start
                0,               # internal attrs
                0,               # external attrs
                local_offset,
            )
            chunks.append(record)
            chunks.append(name_bytes)
            central_size += len(record) + len(name_bytes)

        eocd = _EOCD.pack(
            _EOCD_SIG,
            0, 0,                          # disk numbers
            len(self._entries),
            len(self._entries),
            central_size,
            central_start,
            0,                             # comment length
        )
        chunks.append(eocd)
        return b"".join(chunks)


class ZipReader:
    """Parses a ZIP archive from bytes via its central directory."""

    def __init__(self, data):
        self.data = data
        self.entries = {}
        self._order = []
        self._parse()

    def _find_eocd(self):
        # The EOCD record is at the very end (we write no archive comment,
        # but tolerate a short trailing comment when reading).
        data = self.data
        scan_from = max(0, len(data) - 22 - 0xFFFF)
        position = data.rfind(struct.pack("<I", _EOCD_SIG), scan_from)
        if position < 0:
            raise ApkError("not a zip archive: missing end-of-central-directory")
        return position

    def _parse(self):
        data = self.data
        eocd_offset = self._find_eocd()
        try:
            (_, _, _, _, entry_count, central_size, central_start, _
             ) = _EOCD.unpack_from(data, eocd_offset)
        except struct.error as exc:
            raise ApkError("corrupt end-of-central-directory: %s" % exc)

        offset = central_start
        for _ in range(entry_count):
            try:
                fields = _CENTRAL_HEADER.unpack_from(data, offset)
            except struct.error as exc:
                raise ApkError("corrupt central directory: %s" % exc)
            if fields[0] != _CENTRAL_SIG:
                raise ApkError("bad central directory signature")
            (_, _, _, _, method, _, _, crc, compressed_size,
             uncompressed_size, name_length, extra_length, comment_length,
             _, _, _, local_offset) = fields
            name_start = offset + _CENTRAL_HEADER.size
            name = data[name_start: name_start + name_length].decode("utf-8")
            offset = name_start + name_length + extra_length + comment_length
            self._order.append(name)
            self.entries[name] = (
                method, crc, compressed_size, uncompressed_size, local_offset
            )

    def namelist(self):
        return list(self._order)

    def __contains__(self, name):
        return name in self.entries

    def read(self, name):
        """Return the decompressed, CRC-verified content of ``name``."""
        if name not in self.entries:
            raise ApkError("no such entry: %r" % name)
        method, crc, compressed_size, uncompressed_size, local_offset = (
            self.entries[name]
        )
        data = self.data
        try:
            fields = _LOCAL_HEADER.unpack_from(data, local_offset)
        except struct.error as exc:
            raise ApkError("corrupt local header for %r: %s" % (name, exc))
        if fields[0] != _LOCAL_SIG:
            raise ApkError("bad local header signature for %r" % name)
        local_name_length = fields[9]
        local_extra_length = fields[10]
        payload_start = (
            local_offset + _LOCAL_HEADER.size
            + local_name_length + local_extra_length
        )
        payload = data[payload_start: payload_start + compressed_size]
        if len(payload) != compressed_size:
            raise ApkError("truncated entry payload for %r" % name)
        if method == DEFLATED:
            try:
                content = zlib.decompress(payload, -15)
            except zlib.error as exc:
                raise ApkError("bad deflate stream for %r: %s" % (name, exc))
        elif method == STORED:
            content = payload
        else:
            raise ApkError("unsupported compression method %d for %r"
                           % (method, name))
        if len(content) != uncompressed_size:
            raise ApkError("size mismatch for %r" % name)
        if (zlib.crc32(content) & 0xFFFFFFFF) != crc:
            raise ApkError("crc mismatch for %r" % name)
        return content
