"""High-level APK assembly used by the corpus generator."""

from repro.android.manifest import AndroidManifest
from repro.apk.container import write_apk
from repro.dex.model import DexFile
from repro.errors import ApkError


class ApkBuilder:
    """Assembles an APK from a manifest, dex classes and resources.

    >>> builder = ApkBuilder("com.example.app")
    >>> builder.manifest.add_activity("com.example.app.MainActivity",
    ...                               exported=True)      # doctest: +ELLIPSIS
    Activity(...)
    >>> data = builder.build_bytes()
    """

    def __init__(self, package, version_code=1, version_name="1.0"):
        self.manifest = AndroidManifest(
            package, version_code=version_code, version_name=version_name
        )
        self.dex = DexFile()
        self.resources = {}

    def add_class(self, dex_class):
        if self.dex.class_by_name(dex_class.name) is not None:
            raise ApkError("duplicate class %r" % dex_class.name)
        self.dex.add_class(dex_class)
        return self

    def add_classes(self, dex_classes):
        for dex_class in dex_classes:
            self.add_class(dex_class)
        return self

    def add_resource(self, name, data):
        self.resources[name] = data
        return self

    def build_bytes(self):
        """Serialize to APK bytes."""
        return write_apk(self.manifest, self.dex, self.resources)
