"""APK semantics over the ZIP substrate.

An :class:`Apk` wraps the archive's required entries: the binary manifest
(``AndroidManifest.xml``), the code (``classes.dex``), and an integrity
digest (``META-INF/MANIFEST.SHA256`` — a stand-in for the APK signing
block). :func:`read_apk` parses and verifies an APK byte string and raises
:class:`~repro.errors.BrokenApkError` on corruption — the failure mode that
left 242 of the paper's APKs unanalyzable (Table 2).
"""

from repro.android.manifest import AndroidManifest
from repro.apk.zipio import ZipReader, ZipWriter, STORED
from repro.dex.binary import deserialize_dex, serialize_dex
from repro.errors import ApkError, BrokenApkError, DexError, ManifestError
from repro.util import sha256_hex

MANIFEST_ENTRY = "AndroidManifest.xml"
DEX_ENTRY = "classes.dex"
SIGNATURE_ENTRY = "META-INF/MANIFEST.SHA256"
RESOURCES_PREFIX = "res/"


class Apk:
    """A parsed APK: manifest, dex file, resources, raw size."""

    def __init__(self, manifest, dex, resources=None, raw_size=0):
        self.manifest = manifest
        self.dex = dex
        self.resources = dict(resources or {})
        self.raw_size = raw_size

    @property
    def package(self):
        return self.manifest.package

    @property
    def version_code(self):
        return self.manifest.version_code

    def __repr__(self):
        return "Apk(%s v%d, %d classes)" % (
            self.package, self.version_code, len(self.dex)
        )


def write_apk(manifest, dex, resources=None):
    """Serialize a manifest + dex (+ resources) into APK bytes."""
    writer = ZipWriter()
    manifest_bytes = manifest.to_axml_bytes()
    dex_bytes = serialize_dex(dex)
    writer.add(MANIFEST_ENTRY, manifest_bytes)
    writer.add(DEX_ENTRY, dex_bytes)
    for name, data in sorted((resources or {}).items()):
        if isinstance(data, str):
            data = data.encode("utf-8")
        writer.add(RESOURCES_PREFIX + name, data)
    digest = sha256_hex(manifest_bytes + dex_bytes)
    writer.add(SIGNATURE_ENTRY, digest.encode("ascii"), method=STORED)
    return writer.getvalue()


def read_apk(data, verify=True):
    """Parse APK bytes into an :class:`Apk`.

    Raises :class:`BrokenApkError` for containers that cannot be analyzed —
    missing entries, corrupt archive structures, undecodable manifest or
    dex, or (when ``verify`` is true) a signature digest mismatch.
    """
    try:
        reader = ZipReader(data)
    except ApkError as exc:
        raise BrokenApkError("unreadable archive: %s" % exc)

    for required in (MANIFEST_ENTRY, DEX_ENTRY):
        if required not in reader:
            raise BrokenApkError("missing required entry %r" % required)

    try:
        manifest_bytes = reader.read(MANIFEST_ENTRY)
        dex_bytes = reader.read(DEX_ENTRY)
    except ApkError as exc:
        raise BrokenApkError("corrupt entry: %s" % exc)

    if verify and SIGNATURE_ENTRY in reader:
        try:
            recorded = reader.read(SIGNATURE_ENTRY).decode("ascii")
        except (ApkError, UnicodeDecodeError) as exc:
            raise BrokenApkError("corrupt signature entry: %s" % exc)
        if recorded != sha256_hex(manifest_bytes + dex_bytes):
            raise BrokenApkError("signature digest mismatch")

    try:
        manifest = AndroidManifest.from_axml_bytes(manifest_bytes)
    except ManifestError as exc:
        raise BrokenApkError("undecodable manifest: %s" % exc)
    try:
        dex = deserialize_dex(dex_bytes)
    except DexError as exc:
        raise BrokenApkError("undecodable dex: %s" % exc)

    resources = {}
    for name in reader.namelist():
        if name.startswith(RESOURCES_PREFIX):
            try:
                resources[name[len(RESOURCES_PREFIX):]] = reader.read(name)
            except ApkError as exc:
                raise BrokenApkError("corrupt resource %r: %s" % (name, exc))

    return Apk(manifest, dex, resources, raw_size=len(data))
