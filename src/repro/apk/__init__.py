"""APK container substrate.

Real APKs are ZIP archives with a binary manifest and one or more DEX files.
:mod:`repro.apk.zipio` implements a minimal ZIP writer/reader from scratch
(local file headers, central directory, EOCD, stored and deflate methods);
:mod:`repro.apk.container` layers APK semantics on top (required entries,
signing digest, integrity checks); :mod:`repro.apk.builder` assembles APKs
from a manifest plus DEX classes.
"""

from repro.apk.zipio import ZipWriter, ZipReader, ZipEntry
from repro.apk.container import Apk, read_apk, MANIFEST_ENTRY, DEX_ENTRY
from repro.apk.builder import ApkBuilder

__all__ = [
    "ZipWriter",
    "ZipReader",
    "ZipEntry",
    "Apk",
    "read_apk",
    "ApkBuilder",
    "MANIFEST_ENTRY",
    "DEX_ENTRY",
]
