"""The decompiler used by step (3) of the static pipeline (Figure 1).

Mirrors how the paper uses JADX: take an APK, recover the text manifest
from binary AXML, and emit one Java source file per DEX class. The paper
chose JADX for its low failure rate (Mauthe et al. [74]); broken APKs
(242 in the paper's dataset) surface as
:class:`~repro.errors.BrokenApkError` from the container layer, and
per-class generation failures are recorded rather than aborting the app.
"""

from repro.apk.container import read_apk
from repro.errors import DecompilationError
from repro.javasrc.codegen import generate_source


class DecompiledApp:
    """Decompiler output for one APK."""

    def __init__(self, package, manifest, manifest_xml, sources, failed_classes):
        self.package = package
        self.manifest = manifest
        self.manifest_xml = manifest_xml
        #: Mapping of qualified class name -> Java source text.
        self.sources = dict(sources)
        #: Class names that could not be decompiled.
        self.failed_classes = list(failed_classes)

    @property
    def class_names(self):
        return sorted(self.sources)

    def source_for(self, class_name):
        if class_name not in self.sources:
            raise DecompilationError("no decompiled source for %r" % class_name)
        return self.sources[class_name]

    def __repr__(self):
        return "DecompiledApp(%s, %d sources, %d failed)" % (
            self.package, len(self.sources), len(self.failed_classes)
        )


class Decompiler:
    """Decompiles APKs and keeps aggregate success statistics."""

    def __init__(self):
        self.apks_attempted = 0
        self.apks_succeeded = 0
        self.classes_emitted = 0
        self.classes_failed = 0

    def decompile_class(self, dex_class):
        """Generate Java source for one class; None when generation fails.

        This is the unit of work the class-facts cache memoizes — the
        generated source is a pure function of the class bytes, so one
        SDK class shipped in thousands of APKs only ever reaches this
        method once per corpus.
        """
        try:
            source = generate_source(dex_class)
        except Exception:  # pragma: no cover - defensive
            self.classes_failed += 1
            return None
        self.classes_emitted += 1
        return source

    def decompile_apk(self, apk):
        """Decompile a parsed :class:`~repro.apk.Apk` object."""
        self.apks_attempted += 1
        sources = {}
        failed = []
        for dex_class in apk.dex.classes:
            source = self.decompile_class(dex_class)
            if source is None:
                failed.append(dex_class.name)
            else:
                sources[dex_class.name] = source
        self.apks_succeeded += 1
        return DecompiledApp(
            package=apk.package,
            manifest=apk.manifest,
            manifest_xml=apk.manifest.to_xml(),
            sources=sources,
            failed_classes=failed,
        )

    def decompile_bytes(self, data):
        """Decompile raw APK bytes.

        Raises :class:`~repro.errors.BrokenApkError` for corrupt APKs,
        which callers count as analysis failures (Table 2's 242 APKs).
        """
        return self.decompile_apk(read_apk(data))
