"""JADX-like decompiler: APK bytes -> text manifest + Java sources."""

from repro.decompiler.jadx import Decompiler, DecompiledApp

__all__ = ["Decompiler", "DecompiledApp"]
