"""Chrome remote GUI debugging for WebViews (Section 4.2.1).

"To gain more insight ... we also manually investigated using Android
logs collected by Logcat, and by using the remote GUI debugging tool for
Android." This module is that tool: a read-only DevTools-style inspector
over a live WebViewRuntime — DOM tree dumps, element search, console
access — used to discover, e.g., that Facebook renders URLs as *buttons*
whose tap handler opens the IAB instead of raising an intent.
"""

from repro.errors import DeviceError
from repro.web.dom import Element, TextNode


class RemoteDebugger:
    """A chrome://inspect-style session attached to one WebView."""

    def __init__(self, runtime):
        if runtime.document is None:
            raise DeviceError(
                "WebView has no page loaded; nothing to inspect"
            )
        self.runtime = runtime

    # -- DOM inspection ------------------------------------------------------

    def dom_outline(self, max_depth=6):
        """An elements-panel style outline of the page DOM."""
        lines = []

        def visit(node, depth):
            if depth > max_depth:
                return
            if isinstance(node, Element):
                attrs = "".join(
                    ' %s="%s"' % (k, v) for k, v in sorted(node.attrs.items())
                )
                lines.append("%s<%s%s>" % ("  " * depth, node.tag, attrs))
                for child in node.children:
                    visit(child, depth + 1)
            elif isinstance(node, TextNode) and node.data.strip():
                text = node.data.strip()
                if len(text) > 40:
                    text = text[:37] + "..."
                lines.append("%s%s" % ("  " * depth, text))

        for child in self.runtime.document.children:
            visit(child, 0)
        return "\n".join(lines)

    def find_elements(self, selector):
        """Query the live DOM (read-only handles)."""
        return self.runtime.document.query_selector_all(selector)

    def links_rendered_as_buttons(self):
        """The 4.2.1 discovery: URL-looking text on non-anchor elements.

        Returns elements whose visible text looks like a URL but whose
        tag is not ``<a>`` — the pattern by which Facebook/Instagram
        intercept link taps in app logic instead of raising intents.
        """
        suspects = []
        for element in self.runtime.document.elements():
            if element.tag in ("a", "#document"):
                continue
            direct_text = "".join(
                child.data for child in element.children
                if isinstance(child, TextNode)
            ).strip()
            if direct_text.startswith(("http://", "https://", "www.")):
                suspects.append(element)
        return suspects

    # -- console / runtime ---------------------------------------------------------

    def console_messages(self):
        """Console output of the inspected page's JS context."""
        interpreter = self.runtime._interpreter
        if interpreter is None:
            return []
        return list(interpreter.console_log)

    def evaluate(self, expression):
        """Evaluate read-only JS in the page (the DevTools console)."""
        return self.runtime.evaluateJavascript(expression)

    def list_js_bridges(self):
        """Java objects the app exposed to this page (attack surface)."""
        return sorted(self.runtime.js_bridges)

    def security_state(self):
        """What the (absent) WebView security UI would have shown."""
        url = self.runtime.current_url or ""
        return {
            "url": url,
            "secure_transport": url.startswith("https://"),
            # Unlike CTs, a WebView renders no TLS lock for the user.
            "lock_icon_shown": False,
            "js_bridges_exposed": len(self.runtime.js_bridges),
        }
