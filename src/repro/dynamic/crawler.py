"""The ADB-driven top-site crawler (Section 3.2.2).

For each app, a distinct crawler drives the app's unique UI via simulated
ADB steps: launch the app, navigate to the link surface by tapping
predetermined coordinates, insert the crawl URL, tap it to open the IAB,
scroll to the page end, wait 20 seconds for resources, collect the
device's network log, then purge logs, kill the app and wait 1 minute.
A System WebView Shell baseline establishes the requests expected from an
uninstrumented WebView; Figure 6 reports the *app-specific* endpoints.

The (app x site) workload is embarrassingly parallel: every app crawls
with its own :class:`~repro.dynamic.device.Device` and
:class:`~repro.netstack.network.Network`, so the crawl is sharded
per app over a :mod:`repro.exec` worker pool (the baseline shell is one
ordinary shard, crawled once). Both the inline and the process backend
run the same shard function against a fresh per-shard tracer, and the
parent merges visits, spans, ADB transcripts and metrics in deterministic
(app, site) selection order — so :class:`CrawlResult`, exported metrics
and the trace tree are byte-identical at any worker count and backend.
Compiled-script cache accounting follows the same discipline: shards
always record their ``(script digest, parse cost)`` streams (whether the
cache is enabled or not) and the parent replays them in selection order,
so the registry is also byte-identical with ``REPRO_SCRIPT_CACHE`` on or
off.
"""

import collections
import contextlib
import functools
import time

from repro.dynamic.apps import RealAppProfile
from repro.dynamic.device import Device
from repro.dynamic.iab import IabKind
from repro.dynamic.webview_runtime import WebViewRuntime
from repro.exec import (
    ExecConfig,
    StreamScheduler,
    StreamStage,
    WORKER_LOST_SLUG,
    make_pool,
    simulate_schedule,
    stage_schedule_view,
)
from repro.exec.config import CHUNK_SIZE_ENV_VAR, _env_int
from repro.netstack.network import Network, Request
from repro.obs import (
    CRAWL_NETLOG_EVENTS_METRIC,
    CRAWL_VISIT_ENDPOINTS_METRIC,
    CRAWL_VISITS_METRIC,
    DROPS_METRIC,
    EXEC_BACKEND_METRIC,
    EXEC_CHUNK_SIZE_METRIC,
    EXEC_CHUNKS_REPAIRED_METRIC,
    EXEC_CRITICAL_PATH_METRIC,
    EXEC_QUEUE_DEPTH_METRIC,
    EXEC_STEALS_METRIC,
    EXEC_TASKS_METRIC,
    EXEC_TASKS_QUARANTINED_METRIC,
    EXEC_WORKER_BUSY_METRIC,
    EXEC_WORKERS_METRIC,
    SCRIPT_CACHE_HITS_METRIC,
    SCRIPT_CACHE_MISSES_METRIC,
    SCRIPT_CACHE_TIME_SAVED_METRIC,
    Span,
    TickClock,
    Tracer,
    bind_context,
    default_obs,
    get_logger,
    use_tracer,
)
from repro.web.classify import classify_endpoint
from repro.web.jsengine import record_script_events, script_cache_override
from repro.web.sites import top_sites

_ENDPOINT_BUCKETS = (1, 2, 5, 10, 20, 50, 100)

#: Android's System WebView Shell app — the uninstrumented baseline [32].
SYSTEM_WEBVIEW_SHELL = RealAppProfile(
    "org.chromium.webview_shell", "System WebView Shell", 0, "URL bar",
    IabKind.WEBVIEW,
)

PAGE_LOAD_WAIT_MS = 20_000
BETWEEN_CRAWLS_WAIT_MS = 60_000

#: Crawl shards are whole apps — far coarser than the static pipeline's
#: per-APK tasks — so one shard per dispatch is the right default unless
#: ``REPRO_CHUNK_SIZE`` says otherwise.
DEFAULT_CRAWL_CHUNK_SIZE = 1

#: Cap on the retained simulated-ADB transcript: at 1K apps x 100 sites
#: an unbounded list would dominate crawler memory for no analytical
#: value, so only the most recent commands are kept.
DEFAULT_ADB_LOG_LIMIT = 10_000


class SiteVisit:
    """One (app, site) crawl observation."""

    def __init__(self, app, site, endpoints):
        self.app = app
        self.site = site
        #: Every URL the IAB's network log saw during this visit.
        self.endpoints = list(endpoints)

    def hosts(self):
        """Distinct contacted hosts in first-seen order."""
        seen = dict.fromkeys(
            url.split("://", 1)[1].split("/", 1)[0]
            for url in self.endpoints
        )
        return list(seen)

    def __repr__(self):
        return "SiteVisit(%s @ %s, %d endpoints)" % (
            self.app.name, self.site.host, len(self.endpoints)
        )


class CrawlResult:
    """All visits, plus baseline-differencing and classification."""

    def __init__(self, visits, baseline_visits):
        self.visits = list(visits)
        self._baseline = {
            visit.site.host: set(visit.hosts())
            for visit in baseline_visits
        }
        #: (host, intended_url) -> endpoint type. Classification is a
        #: pure function of its inputs and the same hosts recur in every
        #: visit, so summaries memoize it here.
        self._classified = {}

    def visits_for(self, app_name):
        return [v for v in self.visits if v.app.name == app_name]

    def app_specific_hosts(self, visit):
        """Hosts contacted by this IAB but not by the baseline shell."""
        baseline = self._baseline.get(visit.site.host, set())
        return [host for host in visit.hosts() if host not in baseline]

    def _classify(self, host, intended_url):
        key = (host, intended_url)
        endpoint_type = self._classified.get(key)
        if endpoint_type is None:
            endpoint_type = classify_endpoint(host, intended_url=intended_url)
            self._classified[key] = endpoint_type
        return endpoint_type

    def endpoint_summary(self, app_name):
        """Figure 6 data: site category -> mean distinct app-specific
        endpoints, plus per-category breakdown by endpoint type."""
        from collections import defaultdict

        per_category_counts = defaultdict(list)
        per_category_types = defaultdict(lambda: defaultdict(list))
        for visit in self.visits_for(app_name):
            specific = self.app_specific_hosts(visit)
            category = str(visit.site.category)
            per_category_counts[category].append(len(specific))
            type_counts = defaultdict(int)
            for host in specific:
                endpoint_type = self._classify(host, visit.site.landing_url)
                type_counts[str(endpoint_type)] += 1
            for endpoint_type, count in type_counts.items():
                per_category_types[category][endpoint_type].append(count)
        means = {
            category: sum(counts) / len(counts)
            for category, counts in per_category_counts.items()
        }
        type_means = {
            category: {
                endpoint_type: sum(counts) / len(counts)
                for endpoint_type, counts in types.items()
            }
            for category, types in per_category_types.items()
        }
        return means, type_means


# -- sharded execution ---------------------------------------------------------

class CrawlShard:
    """One per-app unit of crawl work shipped to a worker."""

    __slots__ = ("position", "app")

    def __init__(self, position, app):
        self.position = position
        self.app = app


class _ShardSettings:
    """Picklable knobs shipped to every shard invocation."""

    __slots__ = ("sites", "seed", "real_clock", "script_cache",
                 "adb_log_limit")

    def __init__(self, sites, seed, real_clock=False, script_cache=True,
                 adb_log_limit=DEFAULT_ADB_LOG_LIMIT):
        self.sites = sites
        self.seed = seed
        self.real_clock = real_clock
        self.script_cache = script_cache
        self.adb_log_limit = adb_log_limit


class _VisitRecord:
    """One visit's shippable results (the parent rebuilds SiteVisit)."""

    __slots__ = ("endpoints", "netlog_event_counts")

    def __init__(self, endpoints, netlog_event_counts):
        self.endpoints = endpoints
        #: Sorted (event type value, count) pairs for metric replay.
        self.netlog_event_counts = netlog_event_counts


class ShardOutcome:
    """One app shard's results, merged by the parent in selection order.

    ``spans`` is the shard's exported span tree (every shard traces into
    a fresh per-shard tracer, on both backends, so traces are identical
    whichever side of the process boundary the work ran on);
    ``script_events`` is the ordered ``(digest, parse cost)`` stream the
    parent replays for deterministic script-cache accounting;
    ``adb_commands`` is the shard's bounded ADB transcript.
    """

    __slots__ = ("position", "package", "visits", "adb_commands",
                 "script_events", "cost", "spans", "worker")

    def __init__(self, position, package):
        self.position = position
        self.package = package
        self.visits = []
        self.adb_commands = []
        self.script_events = []
        self.cost = 0.0
        self.spans = None
        self.worker = None


def _visit_site(app, site, device, span, seed, adb):
    """One scripted visit: the five ADB steps plus log collection."""
    adb.append("am start -n %s/.MainActivity" % app.package)
    adb.append("input tap 540 1200")           # navigate to surface
    adb.append("input text '%s'" % site.landing_url)
    adb.append("input tap 540 1400")           # tap the URL

    runtime = WebViewRuntime(app.package, device)
    app.open_link(device, site.landing_url, runtime=runtime)

    # The page pulls its own subresources and third parties.
    for path in site.first_party_resources():
        device.network.fetch(
            Request("https://%s%s" % (site.host, path)),
            netlog=runtime.netlog, time_ms=device.clock_ms,
        )
    for third_party in site.third_party_hosts:
        device.network.fetch(
            Request("https://%s/loader.js" % third_party),
            netlog=runtime.netlog, time_ms=device.clock_ms,
        )
    # App-IAB-specific traffic (injection side effects).
    for endpoint in app.extra_endpoints(site, seed=seed):
        device.network.fetch(
            Request(endpoint), netlog=runtime.netlog,
            time_ms=device.clock_ms,
        )

    adb.append("input swipe 540 1600 540 300")  # scroll to the end
    device.advance_clock(PAGE_LOAD_WAIT_MS)     # 20s resource wait

    endpoints = runtime.netlog.urls()
    # Bridge the per-instance NetLog into the owning visit's span before
    # the on-device log is purged, so the trace tree retains the full
    # event stream for this page load.
    event_counts = {}
    for event in runtime.netlog.events:
        record = event.to_dict()
        span.add_event(record.pop("type"),
                       time=record.pop("time_ms"), **record)
        value = event.event_type.value
        event_counts[value] = event_counts.get(value, 0) + 1
    span.set_attribute("endpoints", len(endpoints))
    span.set_attribute("netlog_source_id", runtime.netlog.source_id)

    adb.append("logcat -c")                     # purge device logs
    runtime.netlog.purge()
    adb.append("am force-stop %s" % app.package)
    device.advance_clock(BETWEEN_CRAWLS_WAIT_MS)
    return _VisitRecord(endpoints, sorted(event_counts.items()))


def _run_crawl_shard(settings, shard):
    """Pool entry point: crawl every site through one app's IAB.

    Runs identically inline and in a worker process: a fresh tracer with
    a fresh deterministic TickClock (unless the study injected a real
    clock), a fresh Device + Network per app (exactly the serial
    pattern), and script events recorded regardless of whether the
    compiled-script cache is enabled.
    """
    app = shard.app
    clock = time.perf_counter if settings.real_clock else TickClock()
    tracer = Tracer(clock=clock)
    outcome = ShardOutcome(shard.position, app.package)
    adb = collections.deque(maxlen=settings.adb_log_limit)
    with use_tracer(tracer), \
            bind_context(stage="crawl", package=app.package), \
            script_cache_override(settings.script_cache), \
            record_script_events(outcome.script_events):
        with tracer.span("crawl_app", app=app.name) as root:
            network = Network(seed=settings.seed, strict=False)
            for site in settings.sites:
                network.register_site(site)
            device = Device(network=network)
            device.install(app)
            for site in settings.sites:
                with tracer.span("visit", app=app.name,
                                 site=site.host) as span:
                    record = _visit_site(app, site, device, span,
                                         settings.seed, adb)
                outcome.visits.append(record)
    outcome.cost = root.duration
    outcome.spans = [root.to_dict()]
    outcome.adb_commands = list(adb)
    return outcome


class AdbCrawler:
    """Crawls the top sites through each app's IAB, sharded per app."""

    def __init__(self, apps, sites=None, seed=0, include_baseline=True,
                 obs=None, exec_config=None,
                 adb_log_limit=DEFAULT_ADB_LOG_LIMIT):
        self.apps = list(apps)
        self.sites = list(sites) if sites is not None else top_sites(100)
        self.seed = seed
        self.include_baseline = include_baseline
        self.adb_log_limit = adb_log_limit
        self.adb_commands = collections.deque(maxlen=adb_log_limit)
        self.obs = obs if obs is not None else default_obs()
        if exec_config is None:
            exec_config = ExecConfig(chunk_size=_env_int(
                CHUNK_SIZE_ENV_VAR, DEFAULT_CRAWL_CHUNK_SIZE
            ))
        self.exec_config = exec_config
        self.log = get_logger("dynamic.crawler")
        self._execute_span = None
        #: Streaming runs replay shard spans before the deterministic
        #: schedule exists; the replayed roots park here (by shard
        #: position) until :meth:`_assign_workers` stamps them.
        self._replayed_roots = {}
        self._visits = self.obs.counter(
            CRAWL_VISITS_METRIC, "Completed (app, site) crawl visits.",
            ("app",),
        )
        self._netlog_events = self.obs.counter(
            CRAWL_NETLOG_EVENTS_METRIC,
            "NetLog events captured during crawl visits, by event type.",
            ("event_type",),
        )
        self._endpoints = self.obs.histogram(
            CRAWL_VISIT_ENDPOINTS_METRIC,
            "Distinct endpoints contacted per visit.",
            buckets=_ENDPOINT_BUCKETS,
        )

    def crawl(self, progress=None):
        """Run the full crawl; returns a :class:`CrawlResult`.

        ``progress``, when given, is called with each app's
        :class:`ShardOutcome` in completion order (the pool's
        ``on_result`` hook); results are still merged in selection order.
        """
        if self.exec_config.streaming:
            return self.crawl_streaming(progress)
        with self.obs.activate(), bind_context(stage="crawl"), \
                self.obs.span("crawl", apps=len(self.apps),
                              sites=len(self.sites)):
            return self._crawl(progress)

    def crawl_streaming(self, progress=None):
        """Run the crawl on the streaming scheduler (same result bytes).

        Visits merge into the :class:`CrawlResult` as shards land
        instead of waiting for the pool barrier; see
        :mod:`repro.exec.stream` and DESIGN.md §Streaming scheduler.
        """
        plan = self.stream_plan(progress=progress)
        scheduler = StreamScheduler(self.exec_config, log=self.log)
        scheduler.run([plan.stage])
        return plan.finalize(scheduler)

    def stream_plan(self, progress=None):
        """Open a streaming crawl and return its :class:`CrawlStreamPlan`.

        The plan holds the ``crawl``/``execute`` spans open on this
        crawler's own tracer (no ambient contextvar, so the plan can
        share a :class:`~repro.exec.StreamScheduler` with other
        studies' stages), exposes ``stage`` for the scheduler, and
        ``finalize(scheduler)`` closes the run.
        """
        return CrawlStreamPlan(self, progress=progress)

    def _shard_list(self):
        """The crawl's (apps, shards): one shard per app, baseline last."""
        apps = list(self.apps)
        if self.include_baseline:
            # The baseline shell is crawled once, as one ordinary shard;
            # differencing happens in CrawlResult, so no shard needs its
            # results in flight.
            apps.append(SYSTEM_WEBVIEW_SHELL)
        shards = [CrawlShard(position, app)
                  for position, app in enumerate(apps)]
        return apps, shards

    def _crawl(self, progress):
        apps, shards = self._shard_list()
        outcomes = self._run_shards(shards, progress)
        schedule = simulate_schedule([o.cost for o in outcomes],
                                     self.exec_config.max_workers,
                                     self.exec_config.chunk_size)
        for outcome, worker in zip(outcomes, schedule.assignments):
            outcome.worker = worker
        self._record_exec_metrics(outcomes, schedule)

        visits = []
        baseline_visits = []
        for app, outcome in zip(apps, outcomes):
            self._merge_shard(app, outcome, visits, baseline_visits)
        self._record_script_metrics(outcomes)
        self.log.info("crawl_complete", visits=len(visits),
                      baseline_visits=len(baseline_visits),
                      workers=self.exec_config.max_workers)
        return CrawlResult(visits, baseline_visits)

    def _shard_fn(self):
        """The per-shard callable (identical for both backends)."""
        settings = _ShardSettings(
            self.sites, self.seed,
            real_clock=not isinstance(self.obs.clock, TickClock),
            script_cache=self.exec_config.script_cache,
            adb_log_limit=self.adb_log_limit,
        )
        return functools.partial(_run_crawl_shard, settings)

    def _run_shards(self, shards, progress):
        """Map the per-app shards over the configured pool, in order."""
        pool = make_pool(self.exec_config, log=self.log)
        fn = self._shard_fn()
        with self.obs.span("execute", backend=pool.name,
                           workers=self.exec_config.max_workers,
                           shards=len(shards)) as execute_span:
            # Remembered so shard spans replay under this span during
            # the merge (it is closed by then) — same tree shape as the
            # static pipeline's execute/analyze_app nesting.
            self._execute_span = execute_span
            if hasattr(progress, "begin"):
                progress.begin(len(shards))
            outcomes = pool.map(shards, fn, on_result=progress)
        if pool.repaired_chunks:
            self.obs.counter(
                EXEC_CHUNKS_REPAIRED_METRIC,
                "Chunks re-run after losing their worker mid-flight.",
            ).inc(pool.repaired_chunks)
        return outcomes

    def _merge_shard(self, app, outcome, visits, baseline_visits):
        """Fold one shard into the crawl (selection order).

        Rebuilds each SiteVisit against the parent's own app and site
        objects (so baseline identity and ``visits_for`` behave exactly
        as in a serial crawl), replays the shard's span tree into the
        study tracer, extends the bounded ADB transcript, and replays the
        per-visit metrics.
        """
        with bind_context(package=app.package):
            self._replay_shard_spans(outcome)
        self.adb_commands.extend(outcome.adb_commands)
        for site, record in zip(self.sites, outcome.visits):
            visit = SiteVisit(app, site, record.endpoints)
            if app is SYSTEM_WEBVIEW_SHELL:
                baseline_visits.append(visit)
            else:
                visits.append(visit)
            self._visits.labels(app=app.name).inc()
            for event_type, count in record.netlog_event_counts:
                self._netlog_events.labels(event_type=event_type).inc(count)
            self._endpoints.observe(len(record.endpoints))
            self.log.debug("visit_complete", app=app.name, site=site.host,
                           endpoints=len(record.endpoints))

    def _replay_shard_spans(self, outcome):
        """Attach a shard's exported span tree to the study tracer."""
        tracer = self.obs.tracer
        for data in outcome.spans:
            root = Span.from_dict(data)
            if outcome.worker is not None:
                root.set_attribute("worker", "w%d" % outcome.worker)
            else:
                # Streaming runs merge before the deterministic schedule
                # exists; park the root until finalize stamps worker
                # attribution post-hoc.
                self._replayed_roots.setdefault(outcome.position,
                                                []).append(root)
            parent = self._execute_span or tracer.current()
            if parent is not None:
                parent.children.append(root)
            else:
                tracer.roots.append(root)
            if tracer.on_span_end is not None:
                for span in root.iter_spans():
                    tracer.on_span_end(span)

    # -- streaming execution ---------------------------------------------------

    def _stage_context(self):
        """Per-event ambient context for streamed deliveries.

        The streaming scheduler interleaves several studies' events, so
        the crawler may not hold its tracer/log context across the run;
        this context manager is entered around every shard execution
        and delivery instead.
        """
        @contextlib.contextmanager
        def enter():
            with self.obs.activate(), bind_context(stage="crawl"):
                yield
        return enter

    def _lost_shard(self, shard):
        """Quarantine outcome for a shard whose workers kept dying.

        The app simply has no visits in the :class:`CrawlResult` — the
        same shape a crawl that never selected the app would produce —
        and the loss is accounted in the drop taxonomy.
        """
        self.obs.counter(
            DROPS_METRIC,
            "Apps dropped before successful analysis, by reason.",
            ("reason",),
        ).labels(reason=WORKER_LOST_SLUG).inc()
        self.log.warning("shard_lost", app=shard.app.package,
                         attempts=self.exec_config.max_attempts)
        outcome = ShardOutcome(shard.position, shard.app.package)
        outcome.spans = []
        return outcome

    def _assign_workers(self, executed, workers):
        """Stamp deterministic worker attribution onto streamed shards."""
        for outcome, worker in zip(executed, workers):
            outcome.worker = worker
            for root in self._replayed_roots.pop(outcome.position, ()):
                root.set_attribute("worker", "w%d" % worker)

    def _record_stream_metrics(self, scheduler, schedule):
        """Scheduler health counters for the run report.

        Steals come from the deterministic schedule replay; repair and
        quarantine counts are what the live repair pass actually did
        (nonzero only under worker faults).
        """
        self.obs.counter(
            EXEC_STEALS_METRIC,
            "Work-steal events in the simulated streamed schedule.",
        ).inc(schedule.steals)
        self.obs.counter(
            EXEC_CHUNKS_REPAIRED_METRIC,
            "Chunks re-run after losing their worker mid-flight.",
        ).inc(scheduler.repaired_chunks)
        self.obs.counter(
            EXEC_TASKS_QUARANTINED_METRIC,
            "Tasks dropped as worker_lost after the retry budget.",
        ).inc(scheduler.quarantined_tasks)

    def _record_exec_metrics(self, outcomes, schedule):
        """Deterministic execution metrics for the run report."""
        config = self.exec_config
        self.obs.gauge(
            EXEC_WORKERS_METRIC, "Configured worker count.",
        ).set(config.max_workers)
        self.obs.gauge(
            EXEC_CHUNK_SIZE_METRIC, "Tasks per worker dispatch.",
        ).set(config.chunk_size)
        self.obs.gauge(
            EXEC_BACKEND_METRIC, "Resolved execution backend (info).",
            ("backend",),
        ).labels(backend=config.resolved_backend).set(1)
        shard_count = len(outcomes)
        chunks = -(-shard_count // config.chunk_size) if shard_count else 0
        self.obs.gauge(
            EXEC_QUEUE_DEPTH_METRIC,
            "High-water mark of chunks in the bounded work queue.",
        ).set(min(config.window, chunks))
        tasks = self.obs.counter(
            EXEC_TASKS_METRIC, "Per-app tasks, by outcome.", ("status",),
        )
        for _ in outcomes:
            tasks.labels(status="ok").inc()
        busy = self.obs.counter(
            EXEC_WORKER_BUSY_METRIC,
            "Clock units each worker spent analyzing apps.",
            ("worker",),
        )
        for worker, amount in enumerate(schedule.worker_busy):
            if amount:
                busy.labels(worker="w%d" % worker).inc(amount)
        self.obs.gauge(
            EXEC_CRITICAL_PATH_METRIC,
            "Makespan of the (simulated greedy) worker schedule.",
        ).set(schedule.critical_path)

    def _record_script_metrics(self, outcomes):
        """Deterministic script-cache accounting by selection-order replay.

        Worker-local hit counts depend on chunk scheduling and on cache
        warmth, so they never feed metrics. Instead every shard records
        its ordered ``(digest, parse cost)`` stream — whether the cache
        was enabled or not — and the parent replays the streams in
        selection order: the first occurrence of a digest is the miss
        that pays its parse cost, every later occurrence is a hit that
        saves it. Byte-identical at any worker count, backend, and cache
        setting.
        """
        seen = {}
        hits = misses = 0
        saved = 0.0
        for outcome in outcomes:
            for digest, cost in outcome.script_events:
                if digest in seen:
                    hits += 1
                    saved += seen[digest]
                else:
                    seen[digest] = cost
                    misses += 1
        self.obs.counter(
            SCRIPT_CACHE_HITS_METRIC,
            "Script parses served from the compiled-script cache.",
        ).inc(hits)
        self.obs.counter(
            SCRIPT_CACHE_MISSES_METRIC,
            "Script parses that tokenized and parsed from scratch.",
        ).inc(misses)
        self.obs.counter(
            SCRIPT_CACHE_TIME_SAVED_METRIC,
            "Estimated clock units saved by compiled-script reuse.",
        ).inc(saved)


class CrawlStreamPlan:
    """One crawl's opened streaming run.

    Created by :meth:`AdbCrawler.stream_plan`. The per-app shards wait
    in ``stage`` for a :class:`~repro.exec.StreamScheduler` (shared with
    other studies' stages when interleaving); visits, spans, transcripts
    and per-visit metrics merge incrementally in exact shard order as
    outcomes stream in, so the :class:`CrawlResult` is byte-identical to
    the barrier path. The ``crawl``/``execute`` spans are held open on
    the crawler's own tracer (never via an ambient contextvar) and
    closed by :meth:`finalize`.
    """

    def __init__(self, crawler, progress=None):
        self.crawler = crawler
        self.visits = []
        self.baseline_visits = []
        #: Shard outcomes in shard order (quarantined ones included).
        self.executed = []
        self._ctx = crawler._stage_context()
        crawler._replayed_roots.clear()
        with self._ctx():
            self._crawl_cm = crawler.obs.span(
                "crawl", apps=len(crawler.apps), sites=len(crawler.sites)
            )
            self.crawl_span = self._crawl_cm.__enter__()
            self.apps, shards = crawler._shard_list()
            self.stage = StreamStage(
                "crawl", shards, crawler._shard_fn(),
                on_lost=crawler._lost_shard,
                chunk_size=crawler.exec_config.chunk_size,
                context=self._ctx,
            )
            # Shards are delivered in shard order already (the stage's
            # prefix-flush buffer holds out-of-order completions), so the
            # merge consumes the stream directly — no short-circuited
            # positions to interleave, unlike the static pipeline.
            self.stage.consume_ordered(self._on_ordered)
            self.stage.consume(progress)
            self._execute_cm = crawler.obs.span(
                "execute", backend=crawler.exec_config.resolved_backend,
                workers=crawler.exec_config.max_workers, shards=len(shards),
            )
            self.execute_span = self._execute_cm.__enter__()
            crawler._execute_span = self.execute_span
            if hasattr(progress, "begin"):
                progress.begin(len(shards))

    def _on_ordered(self, index, outcome):
        self.executed.append(outcome)
        self.crawler._merge_shard(self.apps[index], outcome,
                                  self.visits, self.baseline_visits)

    def costs(self):
        """Measured per-shard costs, in shard order (the simulate input)."""
        return [outcome.cost for outcome in self.executed]

    def finalize(self, scheduler, schedule=None, assignments=None):
        """Close the run: schedule replay, metrics, spans. Returns result.

        ``schedule``/``assignments`` come from the caller for
        interleaved runs (one shared simulation across stages); left at
        None, the plan simulates its own single-stage schedule.
        """
        crawler = self.crawler
        with self._ctx():
            self._execute_cm.__exit__(None, None, None)
            if schedule is None:
                schedule, per_stage = scheduler.simulate([self.costs()])
                assignments = per_stage[0]
            crawler._assign_workers(self.executed, assignments)
            view = stage_schedule_view(crawler.exec_config, assignments,
                                       self.costs(), schedule)
            crawler._record_exec_metrics(self.executed, view)
            crawler._record_stream_metrics(scheduler, schedule)
            crawler._record_script_metrics(self.executed)
            crawler.log.info("crawl_complete", visits=len(self.visits),
                             baseline_visits=len(self.baseline_visits),
                             workers=crawler.exec_config.max_workers)
            self._crawl_cm.__exit__(None, None, None)
        return CrawlResult(self.visits, self.baseline_visits)
