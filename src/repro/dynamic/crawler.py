"""The ADB-driven top-site crawler (Section 3.2.2).

For each app, a distinct crawler drives the app's unique UI via simulated
ADB steps: launch the app, navigate to the link surface by tapping
predetermined coordinates, insert the crawl URL, tap it to open the IAB,
scroll to the page end, wait 20 seconds for resources, collect the
device's network log, then purge logs, kill the app and wait 1 minute.
A System WebView Shell baseline establishes the requests expected from an
uninstrumented WebView; Figure 6 reports the *app-specific* endpoints.
"""

from repro.dynamic.apps import RealAppProfile
from repro.dynamic.device import Device
from repro.dynamic.iab import IabKind
from repro.dynamic.webview_runtime import WebViewRuntime
from repro.netstack.network import Network, Request
from repro.obs import bind_context, default_obs, get_logger
from repro.web.classify import classify_endpoint
from repro.web.sites import top_sites

#: Metrics emitted by the crawler.
CRAWL_VISITS_METRIC = "repro_crawl_visits_total"
CRAWL_NETLOG_EVENTS_METRIC = "repro_crawl_netlog_events_total"
CRAWL_VISIT_ENDPOINTS_METRIC = "repro_crawl_visit_endpoints"
_ENDPOINT_BUCKETS = (1, 2, 5, 10, 20, 50, 100)

#: Android's System WebView Shell app — the uninstrumented baseline [32].
SYSTEM_WEBVIEW_SHELL = RealAppProfile(
    "org.chromium.webview_shell", "System WebView Shell", 0, "URL bar",
    IabKind.WEBVIEW,
)

PAGE_LOAD_WAIT_MS = 20_000
BETWEEN_CRAWLS_WAIT_MS = 60_000


class SiteVisit:
    """One (app, site) crawl observation."""

    def __init__(self, app, site, endpoints):
        self.app = app
        self.site = site
        #: Every URL the IAB's network log saw during this visit.
        self.endpoints = list(endpoints)

    def hosts(self):
        seen = []
        for url in self.endpoints:
            host = url.split("://", 1)[1].split("/", 1)[0]
            if host not in seen:
                seen.append(host)
        return seen

    def __repr__(self):
        return "SiteVisit(%s @ %s, %d endpoints)" % (
            self.app.name, self.site.host, len(self.endpoints)
        )


class CrawlResult:
    """All visits, plus baseline-differencing and classification."""

    def __init__(self, visits, baseline_visits):
        self.visits = list(visits)
        self._baseline = {
            visit.site.host: set(visit.hosts())
            for visit in baseline_visits
        }

    def visits_for(self, app_name):
        return [v for v in self.visits if v.app.name == app_name]

    def app_specific_hosts(self, visit):
        """Hosts contacted by this IAB but not by the baseline shell."""
        baseline = self._baseline.get(visit.site.host, set())
        return [host for host in visit.hosts() if host not in baseline]

    def endpoint_summary(self, app_name):
        """Figure 6 data: site category -> mean distinct app-specific
        endpoints, plus per-category breakdown by endpoint type."""
        from collections import defaultdict

        per_category_counts = defaultdict(list)
        per_category_types = defaultdict(lambda: defaultdict(list))
        for visit in self.visits_for(app_name):
            specific = self.app_specific_hosts(visit)
            category = str(visit.site.category)
            per_category_counts[category].append(len(specific))
            type_counts = defaultdict(int)
            for host in specific:
                endpoint_type = classify_endpoint(
                    host, intended_url=visit.site.landing_url
                )
                type_counts[str(endpoint_type)] += 1
            for endpoint_type, count in type_counts.items():
                per_category_types[category][endpoint_type].append(count)
        means = {
            category: sum(counts) / len(counts)
            for category, counts in per_category_counts.items()
        }
        type_means = {
            category: {
                endpoint_type: sum(counts) / len(counts)
                for endpoint_type, counts in types.items()
            }
            for category, types in per_category_types.items()
        }
        return means, type_means


class AdbCrawler:
    """Crawls the top sites through each app's IAB."""

    def __init__(self, apps, sites=None, seed=0, include_baseline=True,
                 obs=None):
        self.apps = list(apps)
        self.sites = list(sites) if sites is not None else top_sites(100)
        self.seed = seed
        self.include_baseline = include_baseline
        self.adb_commands = []
        self.obs = obs if obs is not None else default_obs()
        self.log = get_logger("dynamic.crawler")
        self._visits = self.obs.counter(
            CRAWL_VISITS_METRIC, "Completed (app, site) crawl visits.",
            ("app",),
        )
        self._netlog_events = self.obs.counter(
            CRAWL_NETLOG_EVENTS_METRIC,
            "NetLog events captured during crawl visits, by event type.",
            ("event_type",),
        )
        self._endpoints = self.obs.histogram(
            CRAWL_VISIT_ENDPOINTS_METRIC,
            "Distinct endpoints contacted per visit.",
            buckets=_ENDPOINT_BUCKETS,
        )

    # -- simulated ADB steps ----------------------------------------------------

    def _adb(self, command):
        self.adb_commands.append(command)

    def _visit(self, app, site, device):
        """One scripted visit: the five ADB steps plus log collection."""
        with self.obs.span("visit", app=app.name, site=site.host) as span:
            return self._visit_in_span(app, site, device, span)

    def _visit_in_span(self, app, site, device, span):
        self._adb("am start -n %s/.MainActivity" % app.package)
        self._adb("input tap 540 1200")           # navigate to surface
        self._adb("input text '%s'" % site.landing_url)
        self._adb("input tap 540 1400")           # tap the URL

        runtime = WebViewRuntime(app.package, device)
        app.open_link(device, site.landing_url, runtime=runtime)

        # The page pulls its own subresources and third parties.
        for path in site.first_party_resources():
            device.network.fetch(
                Request("https://%s%s" % (site.host, path)),
                netlog=runtime.netlog, time_ms=device.clock_ms,
            )
        for third_party in site.third_party_hosts:
            device.network.fetch(
                Request("https://%s/loader.js" % third_party),
                netlog=runtime.netlog, time_ms=device.clock_ms,
            )
        # App-IAB-specific traffic (injection side effects).
        for endpoint in app.extra_endpoints(site, seed=self.seed):
            device.network.fetch(
                Request(endpoint), netlog=runtime.netlog,
                time_ms=device.clock_ms,
            )

        self._adb("input swipe 540 1600 540 300")  # scroll to the end
        device.advance_clock(PAGE_LOAD_WAIT_MS)    # 20s resource wait

        endpoints = runtime.netlog.urls()
        # Bridge the per-instance NetLog into the owning visit's span
        # before the on-device log is purged, so the trace tree retains
        # the full event stream for this page load.
        for event in runtime.netlog.events:
            record = event.to_dict()
            span.add_event(record.pop("type"),
                           time=record.pop("time_ms"), **record)
            self._netlog_events.labels(
                event_type=event.event_type.value
            ).inc()
        span.set_attribute("endpoints", len(endpoints))
        span.set_attribute("netlog_source_id", runtime.netlog.source_id)
        self._visits.labels(app=app.name).inc()
        self._endpoints.observe(len(endpoints))
        self.log.debug("visit_complete", endpoints=len(endpoints),
                       netlog_events=len(runtime.netlog))

        self._adb("logcat -c")                     # purge device logs
        runtime.netlog.purge()
        self._adb("am force-stop %s" % app.package)
        device.advance_clock(BETWEEN_CRAWLS_WAIT_MS)
        return SiteVisit(app, site, endpoints)

    def crawl(self):
        """Run the full crawl; returns a :class:`CrawlResult`."""
        with self.obs.activate(), bind_context(stage="crawl"), \
                self.obs.span("crawl", apps=len(self.apps),
                              sites=len(self.sites)):
            return self._crawl()

    def _crawl(self):
        visits = []
        baseline_visits = []
        apps = list(self.apps)
        if self.include_baseline:
            apps.append(SYSTEM_WEBVIEW_SHELL)
        for app in apps:
            network = Network(seed=self.seed, strict=False)
            for site in self.sites:
                network.register_site(site)
            device = Device(network=network)
            device.install(app)
            with bind_context(package=app.package), \
                    self.obs.span("crawl_app", app=app.name):
                for site in self.sites:
                    visit = self._visit(app, site, device)
                    if app is SYSTEM_WEBVIEW_SHELL:
                        baseline_visits.append(visit)
                    else:
                        visits.append(visit)
        self.log.info("crawl_complete", visits=len(visits),
                      baseline_visits=len(baseline_visits))
        return CrawlResult(visits, baseline_visits)
