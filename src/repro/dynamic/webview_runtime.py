"""The android.webkit.WebView runtime.

A behavioural model of a WebView instance: it loads pages through the
simulated network (attaching the ``X-Requested-With`` header carrying the
app's package name), parses them into a DOM, and supports the app-facing
API the paper instruments — ``loadUrl`` (including ``javascript:`` URLs),
``evaluateJavascript``, ``addJavascriptInterface`` and friends. Injected
JS runs in the real interpreter against the page's DOM with Web API
interception active when the page carries the trace script.
"""

from repro.android.api import X_REQUESTED_WITH_HEADER
from repro.errors import JsError, NetworkError
from repro.netstack.network import Request
from repro.web.html5_testpage import HTML5_TEST_PAGE, TEST_PAGE_URL
from repro.web.htmlparser import parse_html
from repro.web.jsdom import DomBridge
from repro.web.jsengine import (
    JsInterpreter,
    JsObject,
    NativeFunction,
    UNDEFINED,
    taint_enabled,
    taint_sink,
    taint_wrap,
    to_string,
)
from repro.web.webapi import WebApiRecorder

JAVASCRIPT_SCHEME = "javascript:"


class JsBridge:
    """A Java object exposed to page JS via addJavascriptInterface.

    ``methods`` maps method names to Python callables; every invocation is
    recorded so measurements can see bridge traffic (the part the paper
    notes its methodology cannot observe — we surface it for testing).
    """

    def __init__(self, name, methods=None):
        self.name = name
        self.methods = dict(methods or {})
        self.invocations = []

    def as_js_object(self):
        obj = JsObject()
        for method_name, fn in self.methods.items():
            def wrapper(args, this, _name=method_name, _fn=fn):
                if taint_enabled():
                    # Bridge arguments are a sink (data crossing from
                    # page JS into app/Java code) and bridge returns a
                    # source (app state flowing into the page).
                    taint_sink(("bridge_arg", self.name, _name), *args)
                self.invocations.append((_name, [to_string(a) for a in args]))
                result = _fn(*args) if _fn is not None else None
                if result is None:
                    return UNDEFINED
                if taint_enabled():
                    result = taint_wrap(
                        result, {("bridge_ret", self.name, _name)})
                return result
            obj.set(method_name, NativeFunction(
                "%s.%s" % (self.name, method_name), wrapper))
        if not self.methods:
            # An opaque (e.g. obfuscated) bridge still accepts anything.
            def sink(args, this):
                if taint_enabled():
                    taint_sink(("bridge_arg", self.name, "postMessage"),
                               *args)
                self.invocations.append(("postMessage",
                                         [to_string(a) for a in args]))
                return UNDEFINED
            obj.set("postMessage", NativeFunction(
                "%s.postMessage" % self.name, sink))
        return obj


class WebViewRuntime:
    """One WebView instance owned by one app."""

    def __init__(self, app_package, device, settings=None):
        self.app_package = app_package
        self.device = device
        #: The app's private WebView cookie jar (shared by all of this
        #: app's WebViews, invisible to other apps and to the browser).
        self.cookie_manager = device.cookie_stores.webview_manager(
            app_package
        )
        self.netlog = device.new_netlog()
        self.settings = dict(settings or {"javaScriptEnabled": True})
        self.current_url = None
        self.document = None
        self.recorder = WebApiRecorder()
        self._bridge = None
        self._interpreter = None
        self.js_bridges = {}
        self.load_count = 0

    # -- content loading ---------------------------------------------------

    def loadUrl(self, url):
        """Load a URL — or execute JS when given a javascript: URL."""
        if url.startswith(JAVASCRIPT_SCHEME):
            return self.evaluateJavascript(url[len(JAVASCRIPT_SCHEME):],
                                           None)
        if taint_enabled():
            # A tainted URL reaching the network layer is an
            # exfiltration channel (secrets smuggled in the query
            # string become visible to the destination server).
            taint_sink(("network", "loadUrl"), url)
        headers = {
            X_REQUESTED_WITH_HEADER: self.app_package,
            "User-Agent": "Mozilla/5.0 (Linux; Android 12; Pixel 3; wv)",
        }
        cookie_header = None
        if "://" in url:
            host = url.split("://", 1)[1].split("/", 1)[0].split(":", 1)[0]
            cookie_header = self.cookie_manager.get_cookie_header(host)
        if cookie_header:
            headers["Cookie"] = cookie_header
        request = Request(url, headers=headers)
        try:
            response = self.device.network.fetch(
                request, netlog=self.netlog, time_ms=self.device.clock_ms
            )
        except NetworkError:
            self.document = parse_html("<html><body></body></html>", url=url)
        else:
            html = response.body.decode("utf-8", "replace")
            if not html.strip().startswith("<"):
                html = "<html><body>%s</body></html>" % html
            self.document = parse_html(html, url=url)
        self.current_url = url
        self.load_count += 1
        self._bridge = DomBridge(self.document, self.recorder,
                                 clock_ms=self.device.clock_ms,
                                 cookie_header=cookie_header or "")
        self._interpreter = JsInterpreter(self._bridge.globals_map())
        self._expose_bridges()
        return None

    def load_test_page(self):
        """Navigate to the controlled measurement page (3.2.2)."""
        self.document = parse_html(HTML5_TEST_PAGE, url=TEST_PAGE_URL)
        self.current_url = TEST_PAGE_URL
        self.load_count += 1
        host = TEST_PAGE_URL.split("://", 1)[1].split("/", 1)[0]
        self._bridge = DomBridge(
            self.document, self.recorder, clock_ms=self.device.clock_ms,
            cookie_header=self.cookie_manager.get_cookie_header(host) or "",
        )
        self._interpreter = JsInterpreter(self._bridge.globals_map())
        self._expose_bridges()
        return None

    def loadData(self, data, mime_type="text/html", encoding="utf-8"):
        self.document = parse_html(data, url="about:blank")
        self.current_url = "about:blank"
        self.load_count += 1
        self._bridge = DomBridge(self.document, self.recorder,
                                 clock_ms=self.device.clock_ms)
        self._interpreter = JsInterpreter(self._bridge.globals_map())
        self._expose_bridges()
        return None

    def loadDataWithBaseURL(self, base_url, data, mime_type="text/html",
                            encoding="utf-8", history_url=None):
        self.loadData(data, mime_type, encoding)
        self.current_url = base_url
        if self.document is not None:
            self.document.url = base_url
        return None

    def postUrl(self, url, post_data=b""):
        request = Request(url, method="POST", headers={
            X_REQUESTED_WITH_HEADER: self.app_package,
        }, body=post_data)
        self.device.network.fetch(request, netlog=self.netlog,
                                  time_ms=self.device.clock_ms)
        self.current_url = url
        self.load_count += 1
        return None

    # -- JS injection ----------------------------------------------------------

    def evaluateJavascript(self, script, callback=None):
        """Execute JS in the page; async callback gets the result."""
        if self._interpreter is None:
            self.load_test_page()
        if not self.settings.get("javaScriptEnabled", True):
            return None
        try:
            result = self._interpreter.run(script)
        except JsError as exc:
            result = None
            self.device.logcat.log(
                "chromium", "Uncaught (in WebView JS): %s" % exc
            )
        if callback is not None:
            callback(result)
        return result

    def addJavascriptInterface(self, bridge, name=None):
        """Expose a Java object to page JS (the classic attack surface)."""
        if not isinstance(bridge, JsBridge):
            bridge = JsBridge(name or "bridge")
        name = name or bridge.name
        self.js_bridges[name] = bridge
        if self._interpreter is not None:
            self._interpreter.global_scope.declare(
                name, bridge.as_js_object()
            )
        return None

    def removeJavascriptInterface(self, name):
        self.js_bridges.pop(name, None)
        return None

    def _expose_bridges(self):
        for name, bridge in self.js_bridges.items():
            self._interpreter.global_scope.declare(
                name, bridge.as_js_object()
            )

    # -- misc WebView API surface -------------------------------------------------

    def getSettings(self):
        return self.settings

    def setWebViewClient(self, client):
        self.settings["webViewClient"] = client
        return None

    def setWebChromeClient(self, client):
        self.settings["webChromeClient"] = client
        return None

    def getUrl(self):
        return self.current_url

    def getTitle(self):
        if self.document is None:
            return None
        titles = self.document.get_elements_by_tag_name("title")
        return titles[0].text_content() if titles else ""

    def reload(self):
        if self.current_url:
            self.loadUrl(self.current_url)
        return None

    def stopLoading(self):
        return None

    def goBack(self):
        return None

    def goForward(self):
        return None

    def canGoBack(self):
        return False

    def canGoForward(self):
        return False

    def clearCache(self, include_disk_files=True):
        return None

    def clearHistory(self):
        return None

    def setDownloadListener(self, listener):
        return None

    def destroy(self):
        self.document = None
        self._interpreter = None
        return None

    def __repr__(self):
        return "WebViewRuntime(%s @ %s)" % (self.app_package,
                                            self.current_url)
