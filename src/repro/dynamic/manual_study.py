"""The semi-manual top-1K classification (Section 3.2.1, Table 6).

The study walks the 1,000 most-downloaded apps: create dummy accounts
where necessary, look for surfaces with user-generated links, post a link
to https://example.com, follow it, and record what opens. Apps that demand
a phone number or a paid account, or crash with a compatibility error,
are unclassifiable; browsers are set aside.

The eleven real profiles (Table 8 + Discord) supply the interesting IAB
behaviours; the remaining top-1K apps get deterministic scripted
behaviours whose marginals match the paper's population (most popular
apps simply have no user-posted links).
"""

import enum

from repro.dynamic.apps import real_app_profiles
from repro.dynamic.device import Device
from repro.dynamic.iab import IabKind
from repro.netstack.network import Network
from repro.util import derive_seed, make_rng

TEST_LINK = "https://example.com"


class StudyOutcome(enum.Enum):
    OPENS_BROWSER = "Link opens in browser."
    OPENS_WEBVIEW = "Link opens in a WebView."
    OPENS_CT = "Link opens in CT."
    NO_USER_LINKS = "Users can not post links."
    BROWSER_APP = "Browser app."
    NEEDS_PHONE_NUMBER = "Required a phone number."
    INCOMPATIBLE = "App incompatibility error."
    NEEDS_PAID_ACCOUNT = "Required paid account."

    def __str__(self):
        return self.value


class SyntheticStudyApp:
    """A scripted top-1K app for the manual study."""

    def __init__(self, package, name, downloads, behavior):
        self.package = package
        self.name = name
        self.downloads = downloads
        self.behavior = behavior
        from repro.android.manifest import AndroidManifest

        self.manifest = AndroidManifest(package)
        self.users_can_post_links = behavior == "opens_browser"
        self.is_browser = behavior == "browser_app"

    def install_on(self, device):
        if self.behavior == "incompatible":
            raise RuntimeError("INSTALL_FAILED_NO_MATCHING_ABIS")
        device.install(self)

    def create_account(self):
        if self.behavior == "needs_phone":
            raise PermissionError("phone number verification required")
        if self.behavior == "needs_paid":
            raise PermissionError("paid subscription required")

    def open_link(self, device, url, runtime=None):
        from repro.dynamic.iab import LinkOpenEvent

        resolution = device.open_url_via_intent(url)
        return LinkOpenEvent(self.package, url, IabKind.BROWSER,
                             intent_raised=True)


#: Population shares for the synthetic remainder of the top 1K, chosen so
#: expected counts match Table 6 (27 browser-openers, 9 browsers,
#: 24+22+2 unclassifiable, remainder without user links).
_SYNTHETIC_BEHAVIOR_COUNTS = {
    "opens_browser": 27,
    "browser_app": 9,
    "needs_phone": 24,
    "incompatible": 22,
    "needs_paid": 2,
}


def _synthetic_apps(count, seed):
    """Deterministically scripted apps for the non-IAB remainder."""
    rng = make_rng(derive_seed(seed, "manual-study"))
    behaviors = []
    for behavior, quota in _SYNTHETIC_BEHAVIOR_COUNTS.items():
        behaviors.extend([behavior] * quota)
    behaviors.extend(["no_links"] * (count - len(behaviors)))
    rng.shuffle(behaviors)
    apps = []
    for index, behavior in enumerate(behaviors):
        package = "top.app%d.android" % (index + 12)
        downloads = max(86_000_000, 900_000_000 - index * 800_000)
        apps.append(SyntheticStudyApp(
            package, "Top App %d" % (index + 12), downloads, behavior
        ))
    return apps


class AppClassification:
    def __init__(self, app, outcome, event=None):
        self.app = app
        self.outcome = outcome
        self.event = event

    def __repr__(self):
        return "AppClassification(%s, %s)" % (
            getattr(self.app, "name", "?"), self.outcome
        )


class ManualStudy:
    """Drives the top-1K classification and tallies Table 6."""

    def __init__(self, total_apps=1000, seed=0):
        self.total_apps = total_apps
        self.seed = seed
        self.real_apps = real_app_profiles()
        self.synthetic_apps = _synthetic_apps(
            total_apps - len(self.real_apps), seed
        )

    def apps(self):
        return list(self.real_apps) + list(self.synthetic_apps)

    def classify_app(self, app):
        """One app's walk-through: install, account, post link, click."""
        device = Device(network=Network(seed=self.seed, strict=False))

        behavior = getattr(app, "behavior", None)
        if behavior is not None:
            try:
                app.install_on(device)
            except RuntimeError:
                return AppClassification(app, StudyOutcome.INCOMPATIBLE)
            try:
                app.create_account()
            except PermissionError as exc:
                if "phone" in str(exc):
                    return AppClassification(
                        app, StudyOutcome.NEEDS_PHONE_NUMBER
                    )
                return AppClassification(app, StudyOutcome.NEEDS_PAID_ACCOUNT)
            if app.is_browser:
                return AppClassification(app, StudyOutcome.BROWSER_APP)
            if not app.users_can_post_links:
                return AppClassification(app, StudyOutcome.NO_USER_LINKS)
        else:
            device.install(app)

        event = app.open_link(device, TEST_LINK)
        if event.kind == IabKind.WEBVIEW:
            outcome = StudyOutcome.OPENS_WEBVIEW
        elif event.kind == IabKind.CUSTOM_TAB:
            outcome = StudyOutcome.OPENS_CT
        else:
            outcome = StudyOutcome.OPENS_BROWSER
        return AppClassification(app, outcome, event)

    def run(self):
        """Classify every app; returns the list of classifications."""
        return [self.classify_app(app) for app in self.apps()]

    @staticmethod
    def tally(classifications):
        """Table 6 counts from a study run."""
        counts = {outcome: 0 for outcome in StudyOutcome}
        for classification in classifications:
            counts[classification.outcome] += 1
        can_post = (
            counts[StudyOutcome.OPENS_BROWSER]
            + counts[StudyOutcome.OPENS_WEBVIEW]
            + counts[StudyOutcome.OPENS_CT]
        )
        unclassified = (
            counts[StudyOutcome.NEEDS_PHONE_NUMBER]
            + counts[StudyOutcome.INCOMPATIBLE]
            + counts[StudyOutcome.NEEDS_PAID_ACCOUNT]
        )
        return {
            "Users can post links.": can_post,
            "Link opens in browser.": counts[StudyOutcome.OPENS_BROWSER],
            "Link opens in a WebView.": counts[StudyOutcome.OPENS_WEBVIEW],
            "Link opens in CT.": counts[StudyOutcome.OPENS_CT],
            "Users can not post links.": counts[StudyOutcome.NO_USER_LINKS],
            "Browser Apps.": counts[StudyOutcome.BROWSER_APP],
            "Could not classify app.": unclassified,
            "Required a phone number.": counts[
                StudyOutcome.NEEDS_PHONE_NUMBER],
            "App incompatibility error.": counts[StudyOutcome.INCOMPATIBLE],
            "Required paid account.": counts[
                StudyOutcome.NEEDS_PAID_ACCOUNT],
        }
