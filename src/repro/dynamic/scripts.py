"""The JS the studied apps inject into their WebView-based IABs.

These are working renditions of the injections the paper observed
(Section 4.2, Table 8): they execute in the interpreter against the
controlled page, produce the Web API traffic of Table 9, and carry the
inferable intent markers (autofill, cloaking detection, ad insertion,
network measurement) the paper's manual analysis keyed on.
"""

#: Listing 1: the Facebook/Instagram autofill SDK loader (verbatim shape).
AUTOFILL_LOADER_JS = """
(function(d, s, id){
   var sdkURL = "//connect.facebook.net/en_US/iab.autofill.enhanced.js";
   var js, fjs = d.getElementsByTagName(s)[0];
   if (d.getElementById(id)) {
      return;
   }
   js = d.createElement(s);
   js.id = id;
   js.src = sdkURL;
   fjs.parentNode.insertBefore(js, fjs);
}(document, 'script', 'instagram-autofill-sdk'));
"""

#: "A JS script that returned a frequency dictionary with the DOM tag
#: counts."
TAG_COUNT_JS = """
(function(){
  var counts = {};
  var all = document.querySelectorAll('*');
  for (var i = 0; i < all.length; i++) {
    var el = all.item(i);
    var tag = el.tagName.toLowerCase();
    if (counts[tag]) { counts[tag] = counts[tag] + 1; }
    else { counts[tag] = 1; }
  }
  return JSON.stringify(counts);
}());
"""

#: "Locality sensitive hashes for (i) text and DOM elements, (ii) text
#: elements, and (iii) DOM elements ... to detect client-side cloaking
#: based on Cloaker Catcher" (Duan et al.).
SIMHASH_JS = """
(function(){
  // cloaking-detection: client-side simHash, cf. Cloaker Catcher
  function simHash(text) {
    var bits = [];
    var b;
    for (b = 0; b < 32; b++) { bits.push(0); }
    var i;
    for (i = 0; i < text.length; i++) {
      var h = ((text.charCodeAt(i) * 2654435761) % 4294967296) | 0;
      for (b = 0; b < 32; b++) {
        if ((h >> b) & 1) { bits[b] = bits[b] + 1; }
        else { bits[b] = bits[b] - 1; }
      }
    }
    var hash = 0;
    for (b = 0; b < 32; b++) {
      if (bits[b] > 0) { hash = hash | (1 << b); }
    }
    return hash;
  }
  var body = document.body;
  var textHash = simHash(body.textContent);
  var tags = [];
  var elements = body.getElementsByTagName('*');
  var i;
  for (i = 0; i < elements.length; i++) {
    tags.push(elements.item(i).tagName);
  }
  var domHash = simHash(tags.join(','));
  var combinedHash = simHash(body.textContent + tags.join(','));
  return JSON.stringify({
    text: textHash, dom: domHash, combined: combinedHash
  });
}());
"""

#: "A JS script that logged performance metrics to the console. It recorded
#: the time it took to load the DOM content and whether the page was an
#: Accelerated Mobile Pages (AMP) supported page."
PERF_METRICS_JS = """
(function(){
  var t0 = performance.now();
  var onLoaded = function(){ };
  document.addEventListener('DOMContentLoaded', onLoaded);
  var htmlEl = document.getElementsByTagName('html').item(0);
  var isAmp = false;
  if (htmlEl !== null) {
    isAmp = htmlEl.hasAttribute('amp') || htmlEl.hasAttribute('\\u26a1');
  }
  var metas = document.querySelectorAll('meta');
  var viewport = '';
  if (metas.length > 0) {
    var first = metas.item(0);
    var content = first.getAttribute('content');
    if (content !== null) { viewport = content; }
  }
  var ready = document.readyState;
  console.log('perf: domContentLoaded=' + t0 +
              'ms amp=' + isAmp + ' readyState=' + ready +
              ' viewport=' + viewport);
  if (ready === 'complete') {
    document.removeEventListener('DOMContentLoaded', onLoaded);
  }
}());
"""

#: Moj/Chingari: "insert and manage a video Ad via the Google Ads SDK" —
#: obfuscated in the wild; the ad spec JSON (width/height 0,
#: notVisibleReason=noAdView) is what the paper actually read out of it.
#: Deliberately touches no Web API: the paper's server recorded none.
GOOGLE_ADS_BOOTSTRAP_JS = """
(function(w){
  var a = {
    adSpec: {
      slot: '/21775744923/example/video',
      src: 'https://securepubads.doubleclick.net/gampad/ads',
      width: 0,
      height: 0,
      notVisibleReason: 'noAdView'
    },
    v: '3.512.0'
  };
  var p = JSON.stringify(a);
  if (typeof googleAdsJsInterface !== 'undefined') {
    googleAdsJsInterface.notify('gmsg://mobileads.google.com/initialize');
    googleAdsJsInterface.postMessage(p);
  }
  w.__gads_state = p;
}(window));
"""

#: Kik: markedly more obfuscated; communicates with many ad networks but
#: uses only read-only Web APIs (Table 9: querySelectorAll + getAttribute).
KIK_AD_PROBE_JS = """
(function(){
  var q = document.querySelectorAll('meta');
  var m = [];
  var i;
  for (i = 0; i < q.length; i++) {
    var e = q.item(i);
    var n = e.getAttribute('name');
    var c = e.getAttribute('content');
    if (n !== null) { m.push(n + '=' + (c === null ? '' : c)); }
  }
  var z = m.join('&');
  if (typeof googleAdsJsInterface !== 'undefined') {
    googleAdsJsInterface.postMessage(z);
  }
  return z;
}());
"""

#: LinkedIn: "calls to Cedexis traffic management API" — Radar measures
#: availability/response-time/throughput from end-user devices.
CEDEXIS_RADAR_JS = """
(function(w){
  // cedexis radar bootstrap: crowdsourced network measurement
  var radar = {
    host: 'radar.cedexis.com',
    api: 'https://cedexis-radar.net/api/v2/measure',
    zone: 1,
    customer: 10660,
    probes: ['availability', 'response-time', 'throughput']
  };
  var t0 = performance.now();
  radar.started = t0;
  w.__cedexis = radar;
}(window));
"""
