"""The simulated measurement device.

A rooted Pixel 3 running LineageOS 19 (Section 3.2.2): installed apps,
a default browser, Web URI intent dispatch, Logcat, and per-WebView
NetLog access (the userdebug privilege that made the paper's
per-instance network logging possible).
"""

from repro.android.intents import Intent, resolve_intent
from repro.dynamic.cookies import DeviceCookieStores
from repro.errors import DeviceError
from repro.netstack.netlog import NetLog
from repro.netstack.network import Network


class Logcat:
    """The device log buffer."""

    def __init__(self):
        self.lines = []

    def log(self, tag, message):
        self.lines.append((tag, message))

    def filter(self, tag):
        return [message for t, message in self.lines if t == tag]

    def contains(self, needle):
        return any(needle in message for _, message in self.lines)

    def clear(self):
        self.lines = []

    def __len__(self):
        return len(self.lines)


class Device:
    """A simulated Android device."""

    MODEL = "Pixel 3"
    OS = "LineageOS 19 (userdebug)"

    def __init__(self, network=None, default_browser="com.android.chrome",
                 rooted=True):
        self.network = network or Network()
        self.default_browser = default_browser
        self.rooted = rooted
        self.logcat = Logcat()
        self._apps = {}          # package -> app object (has .manifest)
        self._netlogs = []
        self.clock_ms = 0.0
        #: Per-app WebView cookie jars (the CT browser jar lives in
        #: BrowserSession) — Table 1's session-persistence asymmetry.
        self.cookie_stores = DeviceCookieStores()

    # -- app management ------------------------------------------------------

    def install(self, app):
        """Install an app (anything exposing .package and .manifest)."""
        self._apps[app.package] = app
        self.logcat.log("PackageManager", "installed %s" % app.package)
        return app

    def uninstall(self, package):
        self._apps.pop(package, None)

    def app(self, package):
        if package not in self._apps:
            raise DeviceError("app not installed: %s" % package)
        return self._apps[package]

    def installed_packages(self):
        return list(self._apps)

    # -- intents ---------------------------------------------------------------

    def dispatch(self, intent):
        """Dispatch an intent with Android-12+ semantics; logs the result."""
        manifests = [
            app.manifest for app in self._apps.values()
            if getattr(app, "manifest", None) is not None
        ]
        resolution = resolve_intent(intent, manifests,
                                    default_browser=self.default_browser)
        self.logcat.log(
            "ActivityManager",
            "intent %s data=%s -> %s (%s)" % (
                intent.action, intent.data, resolution.kind,
                resolution.handler,
            ),
        )
        return resolution

    def open_url_via_intent(self, url):
        """What clicking a link *should* do: raise a Web URI intent."""
        return self.dispatch(Intent.view(url))

    # -- netlog access (rooted userdebug privilege) --------------------------------

    def new_netlog(self):
        """A fresh per-WebView-instance network log."""
        if not self.rooted:
            raise DeviceError(
                "per-instance NetLog capture requires a rooted userdebug build"
            )
        netlog = NetLog(source_id=len(self._netlogs))
        self._netlogs.append(netlog)
        return netlog

    def advance_clock(self, milliseconds):
        self.clock_ms += milliseconds

    def __repr__(self):
        return "Device(%s, %d apps)" % (self.MODEL, len(self._apps))
