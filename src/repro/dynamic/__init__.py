"""Semi-manual dynamic analysis pipeline (Section 3.2).

Simulated Pixel device and runtimes (:mod:`repro.dynamic.device`,
:mod:`repro.dynamic.webview_runtime`, :mod:`repro.dynamic.customtab_runtime`),
a Frida-like hook engine (:mod:`repro.dynamic.frida`), profiles of the real
apps the paper studied (:mod:`repro.dynamic.apps`), the top-1K manual
classification (:mod:`repro.dynamic.manual_study`), the controlled-page
measurement harness (:mod:`repro.dynamic.measurements`), and the
100-top-site crawler (:mod:`repro.dynamic.crawler`).
"""

from repro.dynamic.device import Device, Logcat
from repro.dynamic.frida import FridaSession
from repro.dynamic.webview_runtime import WebViewRuntime, JsBridge
from repro.dynamic.customtab_runtime import (
    CustomTabRuntime,
    CustomTabsCallback,
    PartialCustomTab,
    BrowserSession,
)
from repro.dynamic.iab import IabKind, LinkOpenEvent
from repro.dynamic.apps import RealAppProfile, real_app_profiles
from repro.dynamic.manual_study import ManualStudy
from repro.dynamic.measurements import IabMeasurementHarness
from repro.dynamic.crawler import AdbCrawler, SYSTEM_WEBVIEW_SHELL

__all__ = [
    "Device",
    "Logcat",
    "FridaSession",
    "WebViewRuntime",
    "JsBridge",
    "CustomTabRuntime",
    "CustomTabsCallback",
    "PartialCustomTab",
    "BrowserSession",
    "IabKind",
    "LinkOpenEvent",
    "RealAppProfile",
    "real_app_profiles",
    "ManualStudy",
    "IabMeasurementHarness",
    "AdbCrawler",
    "SYSTEM_WEBVIEW_SHELL",
]
