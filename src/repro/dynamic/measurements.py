"""The controlled-page IAB measurement harness (Sections 3.2.2 / 4.2).

For each WebView-based IAB: hook every WebView method with the Frida-like
engine, navigate the IAB to the controlled HTML5 test page, let the app's
injections execute, and collect (i) the App-WebView interaction log,
(ii) the injected JS and JS bridges, (iii) the Web API calls the page's
trace instrumentation recorded (Table 9), and (iv) the network log. The
measured artifacts then drive *intent inference* (Table 8) from observed
arguments — not from the profiles' ground truth.
"""

from repro.dynamic.apps import webview_iab_profiles
from repro.dynamic.device import Device
from repro.dynamic.frida import FridaSession
from repro.dynamic.webview_runtime import WebViewRuntime
from repro.netstack.network import Network
from repro.web.html5_testpage import HTML5_TEST_PAGE, TEST_PAGE_URL
from repro.web.urls import parse_url


class IabMeasurement:
    """Everything measured for one app's WebView-based IAB."""

    def __init__(self, app):
        self.app = app
        self.frida = None
        self.runtime = None
        self.injected_scripts = []
        self.injected_bridges = []
        self.injected_bridge_methods = {}
        self.webapi_pairs = []
        self.netlog_hosts = []
        self.console_log = []

    @property
    def performed_js_injection(self):
        return bool(self.injected_scripts)

    @property
    def performed_bridge_injection(self):
        return bool(self.injected_bridges)

    @property
    def no_injection(self):
        return not (self.performed_js_injection
                    or self.performed_bridge_injection)

    # -- intent inference (what Table 8 reports) ---------------------------------

    _SCRIPT_MARKERS = (
        (("autofill",), "Insert FB Autofill SDK JS script."),
        (("simhash", "cloak"), "Returns simHash for page to detect cloaking."),
        (("counts[tag]", "frequency"), "Returns DOM tag counts."),
        (("cedexis", "radar"),
         "Calls to Cedexis traffic management API."),
        (("performance.now", "domcontentloaded"),
         "Logs performance metrics."),
        (("doubleclick", "adspec", "gampad"),
         "Insert and manage a video Ad via Google Ads SDK."),
        (("queryselectorall('meta')", "ad-request"),
         "Insert ads via Ad Networks."),
    )

    _BRIDGE_MARKERS = (
        ("fbpay", "Facebook Pay."),
        ("metacheckout", "Meta Checkout."),
        ("autofill", "AutofillExtensions."),
        ("googleads", "Google Ads."),
    )

    # Exposed-method-name heuristics, consulted when the bridge *name*
    # itself is opaque. ``postMessage`` is deliberately absent: every
    # opaque bridge exposes it, so it carries no intent signal.
    _METHOD_MARKERS = (
        ("payment", "Facebook Pay."),
        ("checkout", "Meta Checkout."),
        ("autofill", "AutofillExtensions."),
        ("notify", "Google Ads."),
        ("adview", "Google Ads."),
    )

    def inferred_script_intents(self):
        """Read the injected JS like the paper's analysts did."""
        if not self.performed_js_injection:
            return ["No injection."]
        intents = []
        for source in self.injected_scripts:
            lowered = source.lower()
            for needles, description in self._SCRIPT_MARKERS:
                if any(needle in lowered for needle in needles):
                    if description not in intents:
                        intents.append(description)
                    break
        if not intents:
            intents.append("(Obfuscated)")
        return intents

    def inferred_bridge_intents(self):
        if not self.performed_bridge_injection:
            return ["No injection."]
        intents = []
        for name in self.injected_bridges:
            lowered = name.lower()
            matched = None
            for needle, description in self._BRIDGE_MARKERS:
                if needle in lowered:
                    matched = description
                    break
            if matched is None:
                # The name tells us nothing — fall back to the exposed
                # method list (captured by the Frida hooks) before
                # writing the bridge off as obfuscated.
                matched = self._intent_from_methods(name)
            if matched is None:
                # Short opaque names read as obfuscated (Pinterest's case).
                matched = "(Obfuscated)" if len(name) <= 3 else name
            if matched not in intents:
                intents.append(matched)
        return intents

    def _intent_from_methods(self, bridge_name):
        """Classify an opaquely-named bridge by its exposed methods."""
        for method in self.injected_bridge_methods.get(bridge_name, ()):
            lowered = method.lower()
            for needle, description in self._METHOD_MARKERS:
                if needle in lowered:
                    return description
        return None

    def __repr__(self):
        return "IabMeasurement(%s, js=%d bridges=%d webapi=%d)" % (
            self.app.name, len(self.injected_scripts),
            len(self.injected_bridges), len(self.webapi_pairs),
        )


class IabMeasurementHarness:
    """Runs the controlled-page measurement for each WebView IAB."""

    def __init__(self, apps=None, seed=0):
        self.apps = list(apps) if apps is not None else webview_iab_profiles()
        self.seed = seed

    def _fresh_device(self):
        network = Network(seed=self.seed, strict=False)
        host = parse_url(TEST_PAGE_URL).host
        network.register_host(
            host, lambda path: HTML5_TEST_PAGE.encode("utf-8")
        )
        return Device(network=network)

    def measure_app(self, app):
        """Measure one app against the controlled page."""
        device = self._fresh_device()
        device.install(app)
        runtime = WebViewRuntime(app.package, device)
        frida = FridaSession().attach(runtime)

        app.open_link(device, TEST_PAGE_URL, runtime=runtime)

        measurement = IabMeasurement(app)
        measurement.frida = frida
        measurement.runtime = runtime
        measurement.injected_scripts = frida.injected_scripts()
        measurement.injected_bridges = frida.injected_bridges()
        measurement.injected_bridge_methods = frida.injected_bridge_methods()
        measurement.webapi_pairs = runtime.recorder.pairs()
        measurement.netlog_hosts = runtime.netlog.hosts()
        if runtime._interpreter is not None:
            measurement.console_log = list(runtime._interpreter.console_log)
        return measurement

    def run(self):
        """Measure every app; returns {app name: IabMeasurement}."""
        return {app.name: self.measure_app(app) for app in self.apps}
