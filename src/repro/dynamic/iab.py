"""In-App Browser definitions.

The paper defines an IAB as "any non-browser Activity that can navigate to
an arbitrary URL". Clicking a link in an app produces a
:class:`LinkOpenEvent` describing which of the three routes was taken:
the default Web URI intent (browser), a WebView-based IAB, or a CT-based
IAB.
"""

import enum


class IabKind(enum.Enum):
    BROWSER = "browser"          # default: Web URI intent -> browser
    WEBVIEW = "webview"          # WebView-based IAB
    CUSTOM_TAB = "custom_tab"    # CT-based IAB

    def __str__(self):
        return self.value


class LinkOpenEvent:
    """What happened when a link was clicked inside an app."""

    def __init__(self, app_package, url, kind, runtime=None,
                 intent_raised=False, surface=None):
        self.app_package = app_package
        self.url = url
        self.kind = kind
        #: The WebViewRuntime / CustomTabRuntime when an IAB opened.
        self.runtime = runtime
        #: Whether a Web URI intent was raised (the 11 IAB apps never do).
        self.intent_raised = intent_raised
        #: Where in the app the link lived (Post / DM / Story / ...).
        self.surface = surface

    @property
    def is_iab(self):
        return self.kind in (IabKind.WEBVIEW, IabKind.CUSTOM_TAB)

    def __repr__(self):
        return "LinkOpenEvent(%s, %s, %s)" % (
            self.app_package, self.kind, self.url
        )
