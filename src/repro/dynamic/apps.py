"""Behavioural profiles of the real apps the paper's dynamic study covers.

Table 8's ten WebView-IAB apps plus Discord (the lone CT-based IAB). A
profile knows where its links live (Post/DM/Story/Profile/Bio), how the
app opens a clicked link, which JS and JS bridges it injects, which
redirector it routes URLs through, and which app-specific endpoints its
IAB contacts during a page visit (the Figure 6 signal).
"""

from repro.android.manifest import AndroidManifest
from repro.dynamic import scripts
from repro.dynamic.customtab_runtime import BrowserSession, CustomTabRuntime
from repro.dynamic.iab import IabKind, LinkOpenEvent
from repro.dynamic.webview_runtime import JsBridge, WebViewRuntime
from repro.util import derive_seed, make_rng
from repro.web.sites import CATEGORY_RICHNESS


class InjectedScript:
    """One JS payload an app injects, with its (ground-truth) intent."""

    def __init__(self, name, source, intent):
        self.name = name
        self.source = source
        self.intent = intent


class BridgeSpec:
    """One JS bridge an app injects."""

    def __init__(self, name, intent, obfuscated=False, methods=None):
        self.name = name
        self.intent = intent
        self.obfuscated = obfuscated
        self.methods = dict(methods or {})


class RealAppProfile:
    """One studied app."""

    def __init__(self, package, name, downloads, surface, iab_kind,
                 injected_scripts=(), bridges=(), redirector=None,
                 extra_endpoint_plan=None):
        self.package = package
        self.name = name
        self.downloads = downloads
        self.surface = surface              # Post / DM / Story / Profile / Bio
        self.iab_kind = iab_kind
        self.injected_scripts = list(injected_scripts)
        self.bridges = list(bridges)
        self.redirector = redirector        # e.g. "lm.facebook.com/l.php"
        #: (category_to_hosts fn) -> app-specific endpoints per site visit.
        self._extra_endpoint_plan = extra_endpoint_plan
        self.manifest = AndroidManifest(package)
        self.manifest.add_activity("%s.MainActivity" % package, exported=True)
        self.users_can_post_links = True

    # -- behaviour -----------------------------------------------------------

    def open_link(self, device, url, runtime=None):
        """Simulate the user tapping a link inside this app."""
        if self.iab_kind == IabKind.BROWSER:
            resolution = device.open_url_via_intent(url)
            return LinkOpenEvent(self.package, url, IabKind.BROWSER,
                                 intent_raised=True, surface=self.surface)

        if self.iab_kind == IabKind.CUSTOM_TAB:
            if runtime is None:
                browser = getattr(device, "browser_session", None)
                if browser is None:
                    browser = BrowserSession(device.default_browser)
                    device.browser_session = browser
                runtime = CustomTabRuntime(self.package, device, browser)
            device.logcat.log(self.package, "opening CT IAB for %s" % url)
            runtime.mayLaunchUrl(url)
            runtime.launchUrl(url)
            return LinkOpenEvent(self.package, url, IabKind.CUSTOM_TAB,
                                 runtime=runtime, surface=self.surface)

        # WebView-based IAB: the URL is rendered as a button; app logic
        # opens a WebView — no Web URI intent is ever raised (4.2.1).
        if runtime is None:
            runtime = WebViewRuntime(self.package, device)
        device.logcat.log(
            self.package,
            "link tap handled internally (no intent): opening WebView IAB",
        )
        for bridge_spec in self.bridges:
            runtime.addJavascriptInterface(
                JsBridge(bridge_spec.name, bridge_spec.methods),
                bridge_spec.name,
            )
        target = url
        if self.redirector:
            redirect_url = "https://%s?u=%s&h=%d" % (
                self.redirector, url, derive_seed(0, self.package, url) % 10**9
            )
            runtime.loadUrl(redirect_url)
            target = url
        runtime.loadUrl(target)
        for script in self.injected_scripts:
            runtime.evaluateJavascript(script.source)
        return LinkOpenEvent(self.package, url, IabKind.WEBVIEW,
                             runtime=runtime, surface=self.surface)

    def extra_endpoints(self, site, seed=0):
        """App-IAB-specific endpoints contacted while visiting ``site``."""
        if self._extra_endpoint_plan is None:
            return []
        return self._extra_endpoint_plan(site, seed)

    def __repr__(self):
        return "RealAppProfile(%s, %s IAB)" % (self.name, self.iab_kind)


# -- endpoint plans ------------------------------------------------------------

def _linkedin_endpoints(site, seed):
    """LinkedIn's IAB: Cedexis trackers + LinkedIn's own services, more of
    them on content-rich sites (Figure 6a)."""
    rng = make_rng(derive_seed(seed, "linkedin", site.host))
    richness = CATEGORY_RICHNESS[site.category]
    endpoints = ["https://radar.cedexis.com/radar/launch.js"]
    if rng.random() < 0.4 + richness * 0.6:
        endpoints.append("https://cedexis-radar.net/api/v2/measure")
    if rng.random() < richness:
        endpoints.append("https://img-a.licdn.com/r/collect")
    if rng.random() < 0.2 + richness * 0.8:
        endpoints.append("https://px.ads.linkedin.com/collect")
    if rng.random() < 0.3 + richness * 0.5:
        endpoints.append("https://perf.linkedin.com/rum")
    extra_trackers = int(richness * 2.5 * rng.uniform(0.6, 1.2))
    for index in range(extra_trackers):
        endpoints.append(
            "https://r%d.cedexis-radar.net/probe" % (index + 1)
        )
    return endpoints


_KIK_AD_HOSTS = (
    "ads.mopub.com", "supply.inmobicdn.net", "cdn77.mopub.com",
    "securepubads.doubleclick.net", "googleads.g.doubleclick.net",
    "ib.adnxs.com", "rtb.openx.net", "sync.criteo.com",
    "ads.yieldmo.com", "bid.smaato.net", "match.adsrvr.org",
    "htlb.casalemedia.com", "fastlane.rubiconproject.com",
    "ads.pubmatic.com", "x.bidswitch.net", "eus.rubiconproject.com",
    "pixel.advertising.com", "us-u.openx.net",
)


def _kik_endpoints(site, seed):
    """Kik's IAB: 15+ ad-network endpoints on content-rich sites, plus
    CDNs (Figure 6b)."""
    rng = make_rng(derive_seed(seed, "kik", site.host))
    richness = CATEGORY_RICHNESS[site.category]
    count = int(richness * 16 * rng.uniform(0.8, 1.25)) + 2
    endpoints = [
        "https://%s/ad-request" % host
        for host in _KIK_AD_HOSTS[:min(count, len(_KIK_AD_HOSTS))]
    ]
    endpoints.append("https://d2nq9p3d9m5xht.cloudfront.net/assets/sdk.js")
    if richness > 0.6:
        endpoints.append("https://dtry3khrwyemw.cloudfront.net/creative.js")
    return endpoints


class _RedirectorOnlyPlan:
    """The Facebook-family plan: only the redirector itself — their crawl
    found no other IAB-specific requests on top sites (4.2.1).

    A class rather than a closure so the profiles stay picklable and can
    ship to process-pool crawl shards.
    """

    __slots__ = ("redirector",)

    def __init__(self, redirector):
        self.redirector = redirector

    def __call__(self, site, seed):
        return ["https://%s?u=https://%s/" % (self.redirector, site.host)]


def _facebook_endpoints(redirector):
    return _RedirectorOnlyPlan(redirector)


# -- the eleven studied apps ------------------------------------------------------

def real_app_profiles():
    """Table 8's ten WebView-IAB apps + Discord (CT), by downloads."""
    fb_bridges = [
        BridgeSpec("fbpayIAWBridge", "payments",
                   methods={"requestPayment": None}),
        BridgeSpec("metaCheckoutIAWBridge", "checkout",
                   methods={"openCheckout": None}),
        BridgeSpec("_AutofillExtensions", "autofill",
                   methods={"getAutofillData": None}),
    ]
    fb_scripts = [
        InjectedScript("autofill-loader", scripts.AUTOFILL_LOADER_JS,
                       "autofill"),
        InjectedScript("tag-counts", scripts.TAG_COUNT_JS, "dom-counts"),
        InjectedScript("simhash", scripts.SIMHASH_JS, "cloaking-detection"),
        InjectedScript("perf-metrics", scripts.PERF_METRICS_JS,
                       "performance"),
    ]
    ads_bridge = [BridgeSpec("googleAdsJsInterface", "ad-injection",
                             methods={"notify": None, "postMessage": None})]

    return [
        RealAppProfile(
            "com.facebook.katana", "Facebook", 8_400_000_000, "Post",
            IabKind.WEBVIEW, fb_scripts, fb_bridges,
            redirector="lm.facebook.com/l.php",
            extra_endpoint_plan=_facebook_endpoints("lm.facebook.com/l.php"),
        ),
        RealAppProfile(
            "com.instagram.android", "Instagram", 4_600_000_000, "DM",
            IabKind.WEBVIEW, fb_scripts, fb_bridges,
            redirector="l.instagram.com",
            extra_endpoint_plan=_facebook_endpoints("l.instagram.com"),
        ),
        RealAppProfile(
            "com.snapchat.android", "Snapchat", 2_340_000_000, "Story",
            IabKind.WEBVIEW,
        ),
        RealAppProfile(
            "com.twitter.android", "Twitter", 1_380_000_000, "DM",
            IabKind.WEBVIEW, redirector="t.co",
        ),
        RealAppProfile(
            "com.linkedin.android", "LinkedIn", 1_200_000_000, "Post",
            IabKind.WEBVIEW,
            injected_scripts=[InjectedScript(
                "cedexis-radar", scripts.CEDEXIS_RADAR_JS,
                "network-measurement",
            )],
            extra_endpoint_plan=_linkedin_endpoints,
        ),
        RealAppProfile(
            "com.pinterest", "Pinterest", 840_000_000, "DM",
            IabKind.WEBVIEW,
            bridges=[BridgeSpec("a0", "unknown", obfuscated=True)],
        ),
        RealAppProfile(
            "com.discord", "Discord", 500_000_000, "Chat",
            IabKind.CUSTOM_TAB,
        ),
        RealAppProfile(
            "in.mohalla.video", "Moj", 289_000_000, "Profile",
            IabKind.WEBVIEW,
            injected_scripts=[InjectedScript(
                "google-ads-bootstrap", scripts.GOOGLE_ADS_BOOTSTRAP_JS,
                "ad-injection",
            )],
            bridges=list(ads_bridge),
        ),
        RealAppProfile(
            "kik.android", "Kik", 176_500_000, "DM",
            IabKind.WEBVIEW,
            injected_scripts=[InjectedScript(
                "ad-probe", scripts.KIK_AD_PROBE_JS, "ad-injection",
            )],
            bridges=list(ads_bridge),
            extra_endpoint_plan=_kik_endpoints,
        ),
        RealAppProfile(
            "com.reddit.frontpage", "Reddit", 124_000_000, "DM",
            IabKind.WEBVIEW,
        ),
        RealAppProfile(
            "io.chingari.app", "Chingari", 97_500_000, "Bio",
            IabKind.WEBVIEW,
            injected_scripts=[InjectedScript(
                "google-ads-bootstrap", scripts.GOOGLE_ADS_BOOTSTRAP_JS,
                "ad-injection",
            )],
            bridges=list(ads_bridge),
        ),
    ]


def webview_iab_profiles():
    """The 10 apps with WebView-based IABs (Table 8)."""
    return [p for p in real_app_profiles() if p.iab_kind == IabKind.WEBVIEW]
