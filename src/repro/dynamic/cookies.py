"""Cookie stores: the structural reason WebView sessions don't persist.

Table 1's user-experience row: with WebViews "the user needs to
authenticate repeatedly" while CTs restore sessions "using existing
browser cookies". The mechanism is cookie-jar scoping — every app's
WebViews share one `CookieManager` *private to that app*, whereas every
app's CTs share the *browser's* jar. This module implements the WebView
side; :class:`repro.dynamic.customtab_runtime.BrowserSession` is the CT
side.
"""


class WebViewCookieManager:
    """The per-app android.webkit.CookieManager."""

    def __init__(self, app_package):
        self.app_package = app_package
        self._jar = {}  # host -> {name: value}
        self.accept_cookies = True

    def set_cookie(self, host, name, value):
        if not self.accept_cookies:
            return False
        self._jar.setdefault(host.lower(), {})[name] = value
        return True

    def get_cookies(self, host):
        return dict(self._jar.get(host.lower(), {}))

    def get_cookie_header(self, host):
        cookies = self.get_cookies(host)
        if not cookies:
            return None
        return "; ".join("%s=%s" % item for item in sorted(cookies.items()))

    def has_session(self, host):
        return bool(self._jar.get(host.lower()))

    def remove_all_cookies(self):
        self._jar.clear()

    def __repr__(self):
        return "WebViewCookieManager(%s, %d hosts)" % (
            self.app_package, len(self._jar)
        )


class DeviceCookieStores:
    """All cookie stores on one device, scoped the way Android scopes them.

    - :meth:`webview_manager` — one jar per app package (isolated).
    - The browser's jar lives in the CT
      :class:`~repro.dynamic.customtab_runtime.BrowserSession` (shared).
    """

    def __init__(self):
        self._per_app = {}

    def webview_manager(self, app_package):
        if app_package not in self._per_app:
            self._per_app[app_package] = WebViewCookieManager(app_package)
        return self._per_app[app_package]

    def app_count(self):
        return len(self._per_app)
