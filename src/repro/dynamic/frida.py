"""Frida-like dynamic instrumentation (Section 3.2.2).

"Using Frida, we dynamically override all methods of android.webkit.WebView
at run-time in order to record the WebView APIs used by the app, along with
the arguments passed." :class:`FridaSession` does exactly that to a
:class:`~repro.dynamic.webview_runtime.WebViewRuntime` instance: every
public method is wrapped, and invocations are recorded with their
arguments before delegating to the original implementation.
"""

from repro.errors import HookError


class HookedCall:
    """One intercepted method invocation."""

    __slots__ = ("method", "args", "kwargs")

    def __init__(self, method, args, kwargs):
        self.method = method
        self.args = args
        self.kwargs = kwargs

    def __repr__(self):
        return "HookedCall(%s, %d args)" % (self.method, len(self.args))


class FridaSession:
    """An instrumentation session over one target object."""

    def __init__(self):
        self.calls = []
        self._targets = []

    def attach(self, target, method_names=None):
        """Hook every public method of ``target`` (or the given subset)."""
        if target in self._targets:
            raise HookError("already attached to %r" % target)
        if method_names is None:
            method_names = [
                name for name in dir(target)
                if not name.startswith("_")
                and callable(getattr(target, name))
            ]
        for name in method_names:
            original = getattr(target, name, None)
            if original is None or not callable(original):
                raise HookError("no such method %r on %r" % (name, target))
            wrapped = self._wrap(name, original)
            setattr(target, name, wrapped)
        self._targets.append(target)
        return self

    def _wrap(self, name, original):
        session = self

        def hook(*args, **kwargs):
            session.calls.append(HookedCall(name, args, kwargs))
            return original(*args, **kwargs)

        hook.__name__ = name
        return hook

    # -- analysis helpers ----------------------------------------------------

    def methods_called(self):
        """Distinct hooked method names in first-call order."""
        seen = []
        for call in self.calls:
            if call.method not in seen:
                seen.append(call.method)
        return seen

    def calls_to(self, method):
        return [call for call in self.calls if call.method == method]

    def arguments_of(self, method):
        """First positional argument of every call to ``method``."""
        return [
            call.args[0] for call in self.calls_to(method) if call.args
        ]

    def injected_scripts(self):
        """JS the app pushed into the page via either injection route
        (evaluateJavascript, or loadUrl with a javascript: scheme)."""
        scripts = list(self.arguments_of("evaluateJavascript"))
        for url in self.arguments_of("loadUrl"):
            if isinstance(url, str) and url.startswith("javascript:"):
                scripts.append(url[len("javascript:"):])
        return scripts

    def injected_bridges(self):
        """Names passed to addJavascriptInterface."""
        names = []
        for call in self.calls_to("addJavascriptInterface"):
            if len(call.args) >= 2:
                names.append(call.args[1])
            elif call.args and hasattr(call.args[0], "name"):
                names.append(call.args[0].name)
        return names

    def injected_bridge_methods(self):
        """Bridge name -> tuple of exposed method names, from the bridge
        objects passed to ``addJavascriptInterface``.

        Ordering is deterministic: bridges appear in registration order
        and methods in the order the bridge object declares them. A
        bridge with no declared methods still exposes the opaque
        ``postMessage`` sink (mirroring
        :meth:`~repro.dynamic.webview_runtime.JsBridge.as_js_object`),
        so the attacker model always has something to probe.
        """
        methods = {}
        for call in self.calls_to("addJavascriptInterface"):
            if not call.args:
                continue
            bridge = call.args[0]
            if len(call.args) >= 2:
                name = call.args[1]
            elif hasattr(bridge, "name"):
                name = bridge.name
            else:
                continue
            exposed = tuple(getattr(bridge, "methods", None) or ())
            methods[name] = exposed if exposed else ("postMessage",)
        return methods

    @property
    def performed_injection(self):
        return bool(self.injected_scripts() or self.injected_bridges())

    def __len__(self):
        return len(self.calls)
