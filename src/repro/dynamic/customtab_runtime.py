"""The Custom Tabs runtime.

The properties Table 1 credits to CTs are structural here: the page loads
in the *browser's* context with the browser's cookie jar, the hosting app
gets no handle to the DOM and cannot inject JS, the security UI (TLS lock)
is browser-owned, and ``mayLaunchUrl`` pre-warms the connection (the
Figure 7 speedup).
"""

from repro.errors import DeviceError
from repro.netstack.network import Request
from repro.web.htmlparser import parse_html
from repro.web.urls import parse_url


class BrowserSession:
    """The default browser's state shared across every app's CTs."""

    def __init__(self, browser_package="com.android.chrome"):
        self.browser_package = browser_package
        #: host -> {name: value}; one jar shared across apps (Table 1 UX row).
        self.cookies = {}
        self.engagement_signals = []

    def set_cookie(self, host, name, value):
        self.cookies.setdefault(host, {})[name] = value

    def cookies_for(self, host):
        return dict(self.cookies.get(host, {}))

    def is_logged_in(self, host):
        return bool(self.cookies.get(host))


class CustomTabsCallback:
    """The app-facing callback surface of a CT session.

    CTs report *coarse* navigation/engagement events to the hosting app
    (Section 4.1.2: "CTs natively measure similar user engagement
    signals") — and nothing else. Beer et al. [43] showed even this can be
    abused as a cross-site oracle, which is why the event payloads here
    deliberately carry no page content.
    """

    NAVIGATION_STARTED = "NAVIGATION_STARTED"
    NAVIGATION_FINISHED = "NAVIGATION_FINISHED"
    TAB_SHOWN = "TAB_SHOWN"
    TAB_HIDDEN = "TAB_HIDDEN"

    def __init__(self):
        self.events = []
        self.engagement = {"scroll_percentage": 0, "session_duration_ms": 0}

    def on_navigation_event(self, event, extras=None):
        # Only the event kind and timing cross the boundary — no URLs of
        # subresources, no DOM, no cookies.
        self.events.append((event, dict(extras or {})))

    def on_greatest_scroll_percentage_increased(self, percentage):
        self.engagement["scroll_percentage"] = percentage

    def events_seen(self):
        return [event for event, _ in self.events]


class CustomTabRuntime:
    """A CustomTabsIntent-launched tab."""

    def __init__(self, app_package, device, browser_session, callback=None):
        self.app_package = app_package
        self.device = device
        self.browser = browser_session
        self.netlog = device.new_netlog()
        self.current_url = None
        self.document = None
        self.tls_lock_shown = False
        self.callback = callback
        self._prewarmed = []

    def mayLaunchUrl(self, url):
        """CT pre-initialization: warm the connection before launch."""
        self.device.network.prewarm(url)
        self._prewarmed.append(url)
        return True

    def launchUrl(self, url):
        """Load the URL in the browser context."""
        parsed = parse_url(url)
        if self.callback is not None:
            self.callback.on_navigation_event(
                CustomTabsCallback.TAB_SHOWN
            )
            self.callback.on_navigation_event(
                CustomTabsCallback.NAVIGATION_STARTED
            )
        cookies = self.browser.cookies_for(parsed.host)
        headers = {"User-Agent": "Mozilla/5.0 (Linux; Android 12) Chrome"}
        if cookies:
            headers["Cookie"] = "; ".join(
                "%s=%s" % item for item in sorted(cookies.items())
            )
        # Note: no X-Requested-With — CT traffic is browser traffic.
        response = self.device.network.fetch(
            Request(url, headers=headers), netlog=self.netlog,
            time_ms=self.device.clock_ms,
        )
        self.current_url = url
        self.tls_lock_shown = parsed.is_secure
        self.document = parse_html(
            response.body.decode("utf-8", "replace") or "<html></html>",
            url=url,
        )
        self.browser.engagement_signals.append(("navigation", url))
        if self.callback is not None:
            self.callback.on_navigation_event(
                CustomTabsCallback.NAVIGATION_FINISHED,
                {"elapsed_ms": response.elapsed_ms},
            )
        return response

    # -- the isolation boundary ----------------------------------------------

    def evaluateJavascript(self, script, callback=None):
        raise DeviceError(
            "Custom Tabs do not expose JS execution to the hosting app"
        )

    def addJavascriptInterface(self, bridge, name=None):
        raise DeviceError(
            "Custom Tabs do not expose JS bridges to the hosting app"
        )

    def get_dom(self):
        raise DeviceError(
            "the hosting app cannot read a Custom Tab's DOM"
        )

    def __repr__(self):
        return "CustomTabRuntime(%s @ %s)" % (self.app_package,
                                              self.current_url)


class PartialCustomTab(CustomTabRuntime):
    """Partial Custom Tabs (Chrome, 2023) — the paper's Section 5 future
    direction for Ad SDKs: a *resizable inline* CT that can render ad or
    auxiliary web content next to native content, keeping the browser-
    context isolation that full-screen CTs provide.

    The tab occupies ``height_px`` of the screen and can be resized or
    expanded to full screen; the hosting app still gets no DOM access.
    """

    #: Bounds imposed by the platform (a partial tab must leave the
    #: app visible, and cannot be arbitrarily tiny).
    MIN_HEIGHT_PX = 50

    def __init__(self, app_package, device, browser_session, height_px=600,
                 screen_height_px=2220, callback=None):
        super().__init__(app_package, device, browser_session,
                         callback=callback)
        self.screen_height_px = screen_height_px
        self.height_px = self._clamp(height_px)
        self.expanded = self.height_px >= self.screen_height_px

    def _clamp(self, height_px):
        return max(self.MIN_HEIGHT_PX,
                   min(int(height_px), self.screen_height_px))

    def resize(self, height_px):
        """User (or app) drags the tab's handle."""
        self.height_px = self._clamp(height_px)
        self.expanded = self.height_px >= self.screen_height_px
        return self.height_px

    def expand(self):
        """Expand to a full-screen CT."""
        return self.resize(self.screen_height_px)

    @property
    def is_inline(self):
        return not self.expanded

    def show_ad(self, ad_url):
        """Render ad content — isolated, unlike a WebView ad (4.1.1)."""
        response = self.launchUrl(ad_url)
        # Google's 2024 CT ads beta: monetization + anti-fraud signals
        # come from the browser, not from app-injected JS.
        self.browser.engagement_signals.append(("ad_impression", ad_url))
        return response
