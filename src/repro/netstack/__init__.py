"""Simulated network stack with Chrome-NetLog-style logging."""

from repro.netstack.netlog import NetLog, NetLogEvent
from repro.netstack.network import (
    Network,
    Request,
    Response,
    SiteTemplate,
    SiteTemplateCache,
    default_site_template_cache,
)
from repro.netstack.pageload import PageLoadModel, LoaderKind

__all__ = [
    "NetLog",
    "NetLogEvent",
    "Network",
    "Request",
    "Response",
    "SiteTemplate",
    "SiteTemplateCache",
    "default_site_template_cache",
    "PageLoadModel",
    "LoaderKind",
]
