"""Page-load-time model — Figure 7 (Appendix).

Google's 2015 measurement (the paper's Figure 7 source) loaded the same
page in a Custom Tab, Chrome, an external browser launch, and a WebView:
the CT was fastest — about twice as fast as the WebView — because CTs
pre-initialize the browser and pre-connect to the destination, while a
WebView must cold-start its renderer inside the app process.

The model decomposes load time into engine startup + connection setup +
transfer + render, with the loader kind determining which phases are
pre-paid. Absolute numbers are synthetic; the *ordering* and the ~2x
CT-vs-WebView ratio are the reproduced shape.
"""

import enum

from repro.netstack.network import Network, Request
from repro.obs import default_obs
from repro.util import derive_seed, make_rng

#: Histogram of simulated total load times, labelled by loader kind.
PAGELOAD_MS_METRIC = "repro_pageload_ms"
_PAGELOAD_BUCKETS = (250, 500, 1000, 2000, 4000, 8000)


class LoaderKind(enum.Enum):
    CUSTOM_TAB = "Custom Tab"
    CHROME = "Chrome"
    EXTERNAL_BROWSER = "External browser launch"
    WEBVIEW = "WebView"

    def __str__(self):
        return self.value


#: Engine-startup cost in ms (mean) per loader.
_STARTUP_MS = {
    # CT pre-initializes the (already running) browser: startup is hidden.
    LoaderKind.CUSTOM_TAB: 40.0,
    # Chrome is typically resident; tab creation only.
    LoaderKind.CHROME: 120.0,
    # Launching an external browser pays an app switch + possible cold start.
    LoaderKind.EXTERNAL_BROWSER: 380.0,
    # WebView cold-starts a renderer in-process, no pre-initialization.
    LoaderKind.WEBVIEW: 680.0,
}

#: Render efficiency multiplier (WebView lacks modern scheduling).
_RENDER_FACTOR = {
    LoaderKind.CUSTOM_TAB: 1.0,
    LoaderKind.CHROME: 1.0,
    LoaderKind.EXTERNAL_BROWSER: 1.05,
    LoaderKind.WEBVIEW: 1.9,
}


class PageLoadResult:
    def __init__(self, loader, startup_ms, network_ms, render_ms):
        self.loader = loader
        self.startup_ms = startup_ms
        self.network_ms = network_ms
        self.render_ms = render_ms

    @property
    def total_ms(self):
        return self.startup_ms + self.network_ms + self.render_ms

    def __repr__(self):
        return "PageLoadResult(%s, %.0fms)" % (self.loader, self.total_ms)


class PageLoadModel:
    """Simulates loading one site with each loader kind."""

    def __init__(self, seed=0, rtt_ms=45.0, obs=None):
        self.seed = seed
        self.rtt_ms = rtt_ms
        self.obs = obs if obs is not None else default_obs()
        self._load_times = self.obs.histogram(
            PAGELOAD_MS_METRIC,
            "Simulated total page-load time (ms), by loader kind.",
            ("loader",), buckets=_PAGELOAD_BUCKETS,
        )

    def load(self, site, loader, trial=0):
        """Load ``site`` (a SiteProfile) with ``loader``; returns timings."""
        with self.obs.span("pageload", site=site.host, loader=loader.value,
                           trial=trial):
            result = self._load(site, loader, trial)
        self._load_times.labels(loader=loader.value).observe(result.total_ms)
        return result

    def _load(self, site, loader, trial):
        rng = make_rng(derive_seed(self.seed, "pageload", site.host,
                                   loader.value, trial))
        network = Network(
            seed=derive_seed(self.seed, "pageload-net", site.host,
                             loader.value, trial),
            rtt_ms=self.rtt_ms,
        )
        # Fresh per-trial Network (independent RNG streams and warm-origin
        # state), but the site's response templates come from the shared
        # process-wide cache, so repeated trials stop rebuilding them.
        network.register_site(site)

        url = site.landing_url
        if loader == LoaderKind.CUSTOM_TAB:
            # mayLaunchUrl() pre-connects before the tab is shown.
            network.prewarm(url)

        startup = max(
            10.0, rng.gauss(_STARTUP_MS[loader], _STARTUP_MS[loader] * 0.15)
        )

        main = network.fetch(Request(url))
        network_ms = main.elapsed_ms
        # Subresources load over the (now warm) connection, partly parallel.
        for position, path in enumerate(site.first_party_resources()):
            response = network.fetch(
                Request("https://%s%s" % (site.host, path))
            )
            parallelism = 6.0
            network_ms += response.elapsed_ms / parallelism
        for host in site.third_party_hosts:
            response = network.fetch(Request("https://%s/resource.js" % host))
            network_ms += response.elapsed_ms / 6.0

        render = (
            site.base_load_ms * 0.8 * _RENDER_FACTOR[loader]
            * rng.uniform(0.9, 1.1)
        )
        return PageLoadResult(loader, startup, network_ms, render)

    def compare(self, site, trials=5):
        """Mean total load time per loader (the Figure 7 bars)."""
        means = {}
        for loader in LoaderKind:
            totals = [
                self.load(site, loader, trial).total_ms
                for trial in range(trials)
            ]
            means[loader] = sum(totals) / len(totals)
        return means
