"""Chrome NetLog-style event logging (Section 3.2.2).

The paper records network logs directly from Chrome's network stack on a
rooted device, capturing detailed per-WebView-instance logs rather than
device-wide traffic. :class:`NetLog` is that per-instance log: a typed
event stream over request lifecycles that the crawler snapshots and purges
between visits.
"""

import enum


class NetLogEventType(enum.Enum):
    REQUEST_ALIVE = "REQUEST_ALIVE"
    URL_REQUEST_START_JOB = "URL_REQUEST_START_JOB"
    HTTP_TRANSACTION_SEND_REQUEST = "HTTP_TRANSACTION_SEND_REQUEST"
    HTTP_TRANSACTION_READ_HEADERS = "HTTP_TRANSACTION_READ_HEADERS"
    REQUEST_REDIRECTED = "REQUEST_REDIRECTED"
    REQUEST_FAILED = "REQUEST_FAILED"
    REQUEST_FINISHED = "REQUEST_FINISHED"


class NetLogEvent:
    __slots__ = ("event_type", "url", "time_ms", "details")

    def __init__(self, event_type, url, time_ms, details=None):
        self.event_type = event_type
        self.url = url
        self.time_ms = time_ms
        self.details = dict(details or {})

    def __repr__(self):
        return "NetLogEvent(%s, %s, %.1fms)" % (
            self.event_type.value, self.url, self.time_ms
        )

    def to_dict(self):
        """A JSON-able record (the trace exporter attaches these to spans)."""
        return {
            "type": self.event_type.value,
            "url": self.url,
            "time_ms": self.time_ms,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            NetLogEventType(data["type"]), data["url"], data["time_ms"],
            data.get("details"),
        )


class NetLog:
    """One WebView/CT instance's network log."""

    def __init__(self, source_id=0):
        self.source_id = source_id
        self.events = []

    def log(self, event_type, url, time_ms, **details):
        self.events.append(NetLogEvent(event_type, str(url), time_ms, details))

    def urls(self, event_type=None):
        """Distinct URLs in first-seen order, optionally for one event type."""
        seen = []
        for event in self.events:
            if event_type is not None and event.event_type != event_type:
                continue
            if event.url not in seen:
                seen.append(event.url)
        return seen

    def hosts(self):
        """Distinct contacted hosts in first-seen order."""
        seen = []
        for url in self.urls(NetLogEventType.HTTP_TRANSACTION_SEND_REQUEST):
            host = _host_of(url)
            if host and host not in seen:
                seen.append(host)
        return seen

    def events_for(self, url):
        return [e for e in self.events if e.url == str(url)]

    def purge(self):
        """Clear the log (the crawler purges between site visits)."""
        self.events = []

    def to_dict(self):
        """Structured export of the whole log; round-trips via from_dict."""
        return {
            "source_id": self.source_id,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data):
        log = cls(source_id=data.get("source_id", 0))
        log.events = [
            NetLogEvent.from_dict(event) for event in data.get("events", [])
        ]
        return log

    def __len__(self):
        return len(self.events)


def _host_of(url):
    if "://" not in url:
        return None
    rest = url.split("://", 1)[1]
    return rest.split("/", 1)[0].split(":", 1)[0]
