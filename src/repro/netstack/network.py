"""Deterministic network simulation.

Models DNS + connection + transfer latency per request against the
top-site profiles, writes every request's lifecycle into a
:class:`~repro.netstack.netlog.NetLog`, and returns responses with the
headers the pipelines care about (``X-Requested-With`` detection works
because requests carry real header dicts).
"""

from repro.android.api import X_REQUESTED_WITH_HEADER
from repro.errors import DnsError
from repro.exec.cache import LruStore, env_max_entries
from repro.netstack.netlog import NetLogEventType
from repro.util import derive_seed, make_rng
from repro.web.urls import parse_url_cached


class Request:
    """An HTTP(S) request."""

    def __init__(self, url, method="GET", headers=None, body=b""):
        self.url = parse_url_cached(url) if isinstance(url, str) else url
        self.method = method
        self.headers = dict(headers or {})
        self.body = body

    @property
    def from_webview(self):
        """Sites can detect WebView traffic via X-Requested-With (Sec. 5)."""
        return X_REQUESTED_WITH_HEADER in self.headers

    @property
    def requesting_app(self):
        return self.headers.get(X_REQUESTED_WITH_HEADER)

    def __repr__(self):
        return "Request(%s %s)" % (self.method, self.url)


class Response:
    """An HTTP(S) response with timing."""

    def __init__(self, url, status=200, headers=None, body=b"",
                 elapsed_ms=0.0):
        self.url = url
        self.status = status
        self.headers = dict(headers or {})
        self.body = body
        self.elapsed_ms = elapsed_ms

    @property
    def ok(self):
        return 200 <= self.status < 300

    def __repr__(self):
        return "Response(%d, %s, %.0fms)" % (
            self.status, self.url, self.elapsed_ms
        )


class SiteTemplate:
    """Shared, read-only response state for one registered site.

    Every app shard registers the same top sites into its own
    :class:`Network`; the template memoizes the per-path response bodies
    and the profile-derived latency so that state is built once per
    process instead of once per (app, site) pair. Templates hold no
    per-connection state — warm origins, RNG streams, and request logs
    stay on each Network.
    """

    __slots__ = ("host", "extra_latency_ms", "third_party_hosts",
                 "_page_html", "_bodies")

    def __init__(self, site_profile, page_html):
        self.host = site_profile.host
        self.extra_latency_ms = site_profile.base_load_ms / 4
        self.third_party_hosts = tuple(site_profile.third_party_hosts)
        self._page_html = page_html
        self._bodies = {}

    def body(self, path):
        """The response bytes for a path (memoized per template)."""
        cached = self._bodies.get(path)
        if cached is None:
            if path == "/":
                cached = self._page_html
            else:
                cached = b"resource:" + path.encode("utf-8")
            self._bodies[path] = cached
        return cached


class SiteTemplateCache:
    """Process-wide memo of :class:`SiteTemplate` per registered site.

    Keyed on every profile field the template derives from, so two
    profiles that differ (e.g. from different ``top_sites`` seeds) never
    share state. Bounded by ``REPRO_CACHE_MAX_ENTRIES``.
    """

    def __init__(self, max_entries=None):
        if max_entries is None:
            max_entries = env_max_entries()
        self._store = LruStore(max_entries)
        self.hits = 0
        self.misses = 0

    def template_for(self, site_profile, page_html):
        key = (site_profile.host, site_profile.base_load_ms,
               tuple(site_profile.third_party_hosts), page_html)
        template = self._store.get(key)
        if template is None:
            template = SiteTemplate(site_profile, page_html)
            self._store.put(key, template)
            self.misses += 1
        else:
            self.hits += 1
        return template

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self):
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._store)


_DEFAULT_TEMPLATE_CACHE = None


def default_site_template_cache():
    """The process-wide site-template cache (created lazily)."""
    global _DEFAULT_TEMPLATE_CACHE
    if _DEFAULT_TEMPLATE_CACHE is None:
        _DEFAULT_TEMPLATE_CACHE = SiteTemplateCache()
    return _DEFAULT_TEMPLATE_CACHE


class Network:
    """The simulated internet: resolvable hosts, latency, content."""

    def __init__(self, seed=0, rtt_ms=45.0, strict=True):
        self.seed = seed
        self.rtt_ms = rtt_ms
        #: strict=True raises DnsError for unregistered hosts; strict=False
        #: models the open internet (any host resolves), which the crawler
        #: uses so third-party endpoints respond without pre-registration.
        self.strict = strict
        self._hosts = {}
        self.requests_seen = []
        #: Pre-warmed (connected) origins — CT pre-initialization (Fig. 7).
        self._warm_origins = set()

    # -- topology ----------------------------------------------------------------

    def register_host(self, host, content_factory=None, extra_latency_ms=0.0):
        """Make a host resolvable; ``content_factory(path) -> bytes``."""
        self._hosts[host.lower()] = (content_factory, extra_latency_ms)

    def register_site(self, site_profile, page_html=b"<html></html>"):
        """Register a top-site profile and its third-party hosts.

        Site response state comes from the process-wide
        :class:`SiteTemplateCache`, so repeated register/fetch cycles
        across app shards share one template per site instead of
        rebuilding identical factories and bodies per Network.
        """
        template = default_site_template_cache().template_for(
            site_profile, page_html
        )
        self.register_host(template.host, template.body,
                           extra_latency_ms=template.extra_latency_ms)
        for third_party in template.third_party_hosts:
            self.register_host(third_party)

    def knows_host(self, host):
        return host.lower() in self._hosts

    # -- connection warmup ----------------------------------------------------------

    def prewarm(self, url):
        """Pre-initialize a connection (CTs warm up the browser, Fig. 7)."""
        parsed = parse_url_cached(url) if isinstance(url, str) else url
        self._warm_origins.add(parsed.origin)

    def is_warm(self, url):
        parsed = parse_url_cached(url) if isinstance(url, str) else url
        return parsed.origin in self._warm_origins

    # -- request execution -------------------------------------------------------------

    def fetch(self, request, netlog=None, time_ms=0.0):
        """Execute one request; returns a :class:`Response`.

        Raises :class:`~repro.errors.DnsError` for unknown hosts. The
        request and all lifecycle events are recorded.
        """
        if isinstance(request, str):
            request = Request(request)
        self.requests_seen.append(request)
        url = request.url
        host = url.host

        if netlog is not None:
            netlog.log(NetLogEventType.REQUEST_ALIVE, url, time_ms)
            netlog.log(NetLogEventType.URL_REQUEST_START_JOB, url, time_ms,
                       method=request.method)

        if host not in self._hosts:
            if self.strict:
                if netlog is not None:
                    netlog.log(NetLogEventType.REQUEST_FAILED, url, time_ms,
                               error="ERR_NAME_NOT_RESOLVED")
                raise DnsError("cannot resolve %r" % host)
            self._hosts[host] = (None, 0.0)

        content_factory, extra_latency = self._hosts[host]
        rng = make_rng(derive_seed(self.seed, "fetch", str(url),
                                   len(self.requests_seen)))

        latency = self.rtt_ms * rng.uniform(0.8, 1.3)          # request RTT
        if not self.is_warm(url):
            # DNS + TCP + TLS handshakes for a cold origin.
            latency += self.rtt_ms * 0.6 * rng.uniform(0.8, 1.2)   # DNS
            latency += self.rtt_ms * rng.uniform(0.9, 1.1)         # TCP
            if url.is_secure:
                latency += self.rtt_ms * rng.uniform(0.9, 1.2)     # TLS
            self._warm_origins.add(url.origin)
        latency += extra_latency * rng.uniform(0.8, 1.2)

        if netlog is not None:
            netlog.log(NetLogEventType.HTTP_TRANSACTION_SEND_REQUEST, url,
                       time_ms + latency * 0.5,
                       headers=dict(request.headers))

        body = b""
        if content_factory is not None:
            body = content_factory(url.path)
        headers = {"Content-Type": "text/html; charset=utf-8"}

        if netlog is not None:
            netlog.log(NetLogEventType.HTTP_TRANSACTION_READ_HEADERS, url,
                       time_ms + latency * 0.8, status=200)
            netlog.log(NetLogEventType.REQUEST_FINISHED, url,
                       time_ms + latency)
        return Response(url, 200, headers, body, elapsed_ms=latency)
