"""Public API facade.

Three studies build on the paper's two pipelines:

- :class:`StaticStudy` — the large-scale static analysis (Section 3.1):
  generate/accept a corpus, run the Figure 1 pipeline, and expose every
  table/figure of Section 4.1.
- :class:`DynamicStudy` — the semi-manual dynamic analysis (Section 3.2):
  top-1K classification, controlled-page IAB measurements, and the
  top-site crawl of Section 4.2.
- :class:`LongitudinalStudy` — the static methodology repeated across an
  evolving corpus, run incrementally with checkpointed, resumable runs
  (DESIGN.md §11).

>>> from repro.core import StaticStudy
>>> study = StaticStudy(universe_size=5000)
>>> result = study.run()                       # doctest: +SKIP
>>> print(study.table7())                      # doctest: +SKIP
"""

from repro.core.study import DynamicStudy, InterleavedStudies, StaticStudy
from repro.longitudinal import LongitudinalStudy

__all__ = ["StaticStudy", "DynamicStudy", "InterleavedStudies",
           "LongitudinalStudy"]
