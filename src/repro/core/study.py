"""Study orchestration: one-call access to every paper artifact."""

from repro.corpus.config import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.dynamic.apps import real_app_profiles, webview_iab_profiles
from repro.dynamic.crawler import AdbCrawler, DEFAULT_CRAWL_CHUNK_SIZE
from repro.exec.config import CHUNK_SIZE_ENV_VAR, _env_int
from repro.dynamic.manual_study import ManualStudy
from repro.dynamic.measurements import IabMeasurementHarness
from repro.exec import ExecConfig, StreamScheduler, chain_results
from repro.obs import Obs, get_logger
from repro.obs.progress import ProgressReporter, progress_enabled
from repro.obs.store import TelemetryStore
from repro.reporting import Table
from repro.results.store import ResultsStore, prepare_study_row
from repro.static_analysis.pipeline import (
    PipelineOptions,
    StaticAnalysisPipeline,
)
from repro.static_analysis import report as static_report
from repro.util import DEFAULT_SEED, fingerprint_token
from repro.web.sites import top_sites


def _default_progress(progress_hook, label):
    """An env-enabled reporter when the caller did not supply a hook."""
    if progress_hook is not None:
        return progress_hook
    if progress_enabled():
        return ProgressReporter(label=label)
    return None


class StaticStudy:
    """The ~146.5K-app static measurement study, at configurable scale.

    ``max_workers`` / ``chunk_size`` / ``exec_backend`` shard the per-app
    analysis across a :mod:`repro.exec` worker pool; left at None they
    fall back to the ``REPRO_MAX_WORKERS`` / ``REPRO_CHUNK_SIZE`` /
    ``REPRO_EXEC_BACKEND`` environment. ``streaming`` (or
    ``REPRO_EXEC_STREAMING``) runs the study on the streaming scheduler
    instead of the barrier pool. Results are byte-identical for any
    worker count, backend and scheduler (see DESIGN.md §Execution).
    """

    def __init__(self, universe_size=20_000, seed=DEFAULT_SEED, corpus=None,
                 options=None, obs=None, max_workers=None, chunk_size=None,
                 exec_backend=None, streaming=None, telemetry=None,
                 results_store=None, progress_hook=None):
        #: Per-study observability bundle (registry + tracer + clock).
        self.obs = obs if obs is not None else Obs()
        if corpus is None:
            corpus = generate_corpus(
                CorpusConfig(universe_size=universe_size, seed=seed),
                obs=self.obs,
            )
        self.corpus = corpus
        self.options = options or PipelineOptions()
        self.exec_config = ExecConfig(max_workers=max_workers,
                                      chunk_size=chunk_size,
                                      backend=exec_backend,
                                      streaming=streaming)
        #: Run-history sink; defaults to ``REPRO_OBS_DB`` when set.
        self.telemetry = (telemetry if telemetry is not None
                          else TelemetryStore.from_env())
        #: Queryable results sink; defaults to ``REPRO_RESULTS_DB``.
        self.results_store = (results_store if results_store is not None
                              else ResultsStore.from_env())
        self.progress_hook = _default_progress(progress_hook, "static")
        self.pipeline = StaticAnalysisPipeline(
            corpus, options=self.options, obs=self.obs,
            exec_config=self.exec_config,
            progress_hook=self.progress_hook,
        )
        self.result = None
        self._aggregator = None

    def run(self, max_apps=None, progress=None):
        """Run the pipeline; memoizes the result and persists telemetry."""
        if self.exec_config.streaming:
            return self.run_streaming(max_apps=max_apps, progress=progress)
        result = self.pipeline.run(max_apps=max_apps, progress=progress)
        return self._finish_run(result)

    def run_streaming(self, max_apps=None, progress=None):
        """Run on the streaming scheduler, labeling ingest rows en route."""
        plan = self.stream_plan(max_apps=max_apps, progress=progress)
        scheduler = StreamScheduler(self.exec_config, log=self.pipeline.log)
        scheduler.run([plan.stage])
        result = plan.finalize(scheduler)
        return self._finish_run(result, prepared=plan.prepared)

    def stream_plan(self, max_apps=None, progress=None):
        """Open a streaming run whose ingest rows prepare incrementally.

        On top of the pipeline's own plan, an extra ordered consumer
        SDK-labels each successful outcome as it lands, so by
        :meth:`InterleavedStudies.run`/:meth:`run_streaming` finalize
        time the results-DB ingest only writes rows (cache-served apps
        bypass the stage and are prepared inside the ingest instead).
        """
        plan = self.pipeline.stream_plan(max_apps=max_apps,
                                         progress=progress)
        plan.prepared = {}
        labeler = self.pipeline.labeler

        def prepare(index, outcome):
            if outcome.error is None:
                plan.prepared[outcome.package] = prepare_study_row(
                    outcome.analysis, labeler
                )

        plan.stage.consume_ordered(prepare)
        return plan

    def _finish_run(self, result, prepared=None):
        """Memoize the result and persist telemetry + queryable rows."""
        self.result = result
        self._aggregator = None
        if self.telemetry is not None:
            self.telemetry.record_run(
                self.obs, "static",
                corpus=self.corpus.fingerprint(),
                options=fingerprint_token(self.options.cache_key()),
                items=self.result.analyzed, root_span="run",
            )
        if self.results_store is not None:
            self.results_store.ingest(
                self.result,
                corpus=self.corpus.fingerprint(),
                options=fingerprint_token(self.options.cache_key()),
                snapshot=str(self.corpus.config.snapshot_date),
                prepared=prepared,
            )
        return self.result

    @property
    def aggregator(self):
        if self.result is None:
            self.run()
        if self._aggregator is None:
            with self.obs.activate():
                self._aggregator = static_report.Aggregator(self.result)
        return self._aggregator

    def run_report(self):
        """Pipeline-health markdown: throughput, drops, stage time shares."""
        if self.result is None:
            self.run()
        return self.obs.run_report(
            "Static study run report", items_label="apps",
            items_count=self.result.analyzed, root_span="run",
        )

    # -- paper artifacts ----------------------------------------------------

    def table2(self):
        if self.result is None:
            self.run()
        return static_report.table2(self.result)

    def table3(self):
        return static_report.table3(self.aggregator)

    def table4(self, top_n=5):
        return static_report.table4(self.aggregator, top_n)

    def table5(self, top_n=3):
        return static_report.table5(self.aggregator, top_n)

    def table7(self):
        return static_report.table7(self.aggregator)

    def figure3(self, top_n=10):
        return static_report.figure3(self.aggregator, top_n)

    def figure4(self):
        return static_report.figure4(self.aggregator)

    def usage_shares(self):
        """(webview %, ct %, both %) of analyzed apps — the headline."""
        aggregator = self.aggregator
        total = self.result.analyzed or 1
        return (
            100.0 * aggregator.webview_apps / total,
            100.0 * aggregator.ct_apps / total,
            100.0 * aggregator.both_apps / total,
        )


class DynamicStudy:
    """The top-1K semi-manual dynamic study.

    Like :class:`StaticStudy`, ``max_workers`` / ``chunk_size`` /
    ``exec_backend`` shard the crawl (per app) across a
    :mod:`repro.exec` worker pool, and ``script_cache`` toggles the
    compiled-script cache (``REPRO_SCRIPT_CACHE``); left at None they
    fall back to the environment. Crawl results and metrics are
    byte-identical for any worker count and cache setting (see DESIGN.md
    §Dynamic throughput).
    """

    def __init__(self, seed=DEFAULT_SEED, site_count=100, total_apps=1000,
                 obs=None, max_workers=None, chunk_size=None,
                 exec_backend=None, script_cache=None, streaming=None,
                 telemetry=None, results_store=None, progress_hook=None):
        self.seed = seed
        self.obs = obs if obs is not None else Obs()
        self.telemetry = (telemetry if telemetry is not None
                          else TelemetryStore.from_env())
        #: Queryable results sink; defaults to ``REPRO_RESULTS_DB``.
        self.results_store = (results_store if results_store is not None
                              else ResultsStore.from_env())
        self.progress_hook = _default_progress(progress_hook, "crawl")
        self.sites = top_sites(site_count)
        self.manual_study = ManualStudy(total_apps=total_apps, seed=seed)
        self.harness = IabMeasurementHarness(seed=seed)
        if chunk_size is None:
            chunk_size = _env_int(CHUNK_SIZE_ENV_VAR,
                                  DEFAULT_CRAWL_CHUNK_SIZE)
        self.exec_config = ExecConfig(max_workers=max_workers,
                                      chunk_size=chunk_size,
                                      backend=exec_backend,
                                      script_cache=script_cache,
                                      streaming=streaming)
        self._classifications = None
        self._measurements = None
        self._crawl = None

    # -- Table 6 ------------------------------------------------------------

    def classify_top_apps(self):
        if self._classifications is None:
            self._classifications = self.manual_study.run()
        return self._classifications

    def table6(self):
        tally = ManualStudy.tally(self.classify_top_apps())
        table = Table(
            ["Classification of apps", "#apps"],
            title="Table 6: Hyperlink clicking behavior in the top 1K apps",
        )
        for label, count in tally.items():
            table.add_row(label, count)
        return table

    # -- Table 8 / Table 9 --------------------------------------------------------

    def measure_iabs(self):
        if self._measurements is None:
            self._measurements = self.harness.run()
            if self.results_store is not None:
                self.results_store.ingest_webapi(
                    self._measurements,
                    corpus=fingerprint_token(("iab", self.seed)),
                    options="",
                    snapshot="seed-%d" % self.seed,
                )
        return self._measurements

    def table8(self):
        measurements = self.measure_iabs()
        ordered = sorted(
            measurements.values(), key=lambda m: -m.app.downloads
        )
        table = Table(
            ["Downloads", "App", "Via", "HTML/JS Injected",
             "JS Bridge Injected"],
            title="Table 8: WebView injection and inferred intents",
        )
        for measurement in ordered:
            table.add_row(
                _abbrev(measurement.app.downloads),
                measurement.app.name,
                measurement.app.surface,
                " ".join(measurement.inferred_script_intents()),
                " ".join(measurement.inferred_bridge_intents()),
            )
        return table

    def table9(self):
        measurements = self.measure_iabs()
        table = Table(
            ["App", "Interface", "Method"],
            title="Table 9: Web APIs accessed, per controlled-page server log",
        )
        for name in sorted(measurements):
            measurement = measurements[name]
            grouped = {}
            for interface, method in measurement.webapi_pairs:
                grouped.setdefault(interface, []).append(method)
            first = True
            for interface in sorted(grouped):
                for method in sorted(set(grouped[interface])):
                    table.add_row(name if first else "", interface, method)
                    first = False
        return table

    # -- Figure 6 -----------------------------------------------------------------

    def crawl_top_sites(self, apps=None, progress=None):
        if self._crawl is None:
            crawler = self._make_crawler(apps)
            crawl = crawler.crawl(
                progress=chain_results(progress, self.progress_hook)
            )
            self._finish_crawl(crawl)
        return self._crawl

    def _make_crawler(self, apps=None):
        if apps is None:
            apps = webview_iab_profiles()
        return AdbCrawler(apps, sites=self.sites, seed=self.seed,
                          obs=self.obs, exec_config=self.exec_config)

    def stream_plan(self, apps=None, progress=None):
        """Open a streaming crawl (see :meth:`AdbCrawler.stream_plan`)."""
        crawler = self._make_crawler(apps)
        return crawler.stream_plan(
            progress=chain_results(progress, self.progress_hook)
        )

    def _finish_crawl(self, crawl):
        """Memoize the crawl and persist telemetry + queryable rows."""
        self._crawl = crawl
        if self.telemetry is not None:
            self.telemetry.record_run(
                self.obs, "dynamic",
                corpus=fingerprint_token(
                    ("crawl", self.seed, len(self.sites))
                ),
                options=fingerprint_token(
                    ("script_cache", self.exec_config.script_cache)
                ),
                items=len(crawl.visits), root_span="crawl",
            )
        if self.results_store is not None:
            self.results_store.ingest(
                crawl,
                corpus=fingerprint_token(
                    ("crawl", self.seed, len(self.sites))
                ),
                options=fingerprint_token(
                    ("script_cache", self.exec_config.script_cache)
                ),
                snapshot="seed-%d" % self.seed,
            )
        return crawl

    def run_report(self):
        """Crawl-health markdown: visit throughput and stage time shares."""
        visits = len(self._crawl.visits) if self._crawl is not None else 0
        return self.obs.run_report(
            "Dynamic study run report", items_label="visits",
            items_count=visits, root_span="crawl",
        )

    def figure6(self, app_name):
        """Per-site-category mean distinct app-specific endpoints."""
        crawl = self.crawl_top_sites()
        return crawl.endpoint_summary(app_name)

    def all_profiles(self):
        return real_app_profiles()


class InterleavedStudies:
    """Run a static study and a dynamic crawl through ONE scheduler.

    Both studies' chunks interleave round-robin in a single streaming
    worker pool (:class:`~repro.exec.StreamScheduler`), so the crawl's
    many uniform shards fill the worker idle time behind the static
    study's straggler APKs — the mixed-workload speedup
    ``benchmarks/bench_scheduler.py`` measures. One shared schedule
    simulation attributes workers and makespan across both stages.

    Each study keeps its own :class:`~repro.obs.Obs` bundle (the
    stages' ``context`` factories re-enter the right tracer around
    every event), and both results are byte-identical to running the
    studies back to back.
    """

    def __init__(self, static_study, dynamic_study, exec_config=None):
        self.static = static_study
        self.dynamic = dynamic_study
        #: Governs workers/window/backend/retries for the shared pool;
        #: each stage keeps its own study's chunk size.
        self.exec_config = (exec_config if exec_config is not None
                            else static_study.exec_config)
        self.log = get_logger("core.interleave")

    def run(self, max_apps=None, apps=None):
        """Run both studies interleaved; returns (StudyResult, CrawlResult)."""
        static_plan = self.static.stream_plan(max_apps=max_apps)
        crawl_plan = self.dynamic.stream_plan(apps=apps)
        scheduler = StreamScheduler(self.exec_config, log=self.log)
        scheduler.run([static_plan.stage, crawl_plan.stage])
        schedule, per_stage = scheduler.simulate(
            [static_plan.costs(), crawl_plan.costs()]
        )
        result = static_plan.finalize(scheduler, schedule=schedule,
                                      assignments=per_stage[0])
        crawl = crawl_plan.finalize(scheduler, schedule=schedule,
                                    assignments=per_stage[1])
        self.static._finish_run(result, prepared=static_plan.prepared)
        self.dynamic._finish_crawl(crawl)
        return result, crawl


def _abbrev(value):
    from repro.util import format_abbrev

    return format_abbrev(value)
