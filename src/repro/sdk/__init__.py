"""SDK catalog and package labelling (Section 3.1.4)."""

from repro.sdk.catalog import (
    SdkCategory,
    SdkProfile,
    build_catalog,
    named_sdks,
    GOOGLE_ANDROID_PREFIX,
)
from repro.sdk.labeling import SdkLabeler, PackageLabel

__all__ = [
    "SdkCategory",
    "SdkProfile",
    "build_catalog",
    "named_sdks",
    "SdkLabeler",
    "PackageLabel",
    "GOOGLE_ANDROID_PREFIX",
]
