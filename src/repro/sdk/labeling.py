"""Package -> SDK labelling (Section 3.1.4).

The pipeline extracts the Java package of every class that populates
content into a WebView or launches a CT, then labels it: Google's own
``com.google.android`` is excluded, known SDK prefixes resolve through the
Play SDK Index, single-letter obfuscated packages are flagged, and the rest
are "unknown" — reproducing the paper's 126-categorized / 4-obfuscated /
10-unassociated split.
"""

from repro.playstore.sdkindex import PlaySdkIndex, SdkIndexEntry
from repro.sdk.catalog import GOOGLE_ANDROID_PREFIX, SdkCategory


class PackageLabel:
    """The labelling outcome for one Java package."""

    KNOWN = "known"
    OBFUSCATED = "obfuscated"
    UNKNOWN = "unknown"
    EXCLUDED = "excluded"

    def __init__(self, package, status, sdk=None):
        self.package = package
        self.status = status
        self.sdk = sdk  # SdkProfile when status == KNOWN

    @property
    def category(self):
        if self.sdk is not None:
            return self.sdk.category
        if self.status in (PackageLabel.OBFUSCATED, PackageLabel.UNKNOWN):
            return SdkCategory.UNKNOWN
        return None

    def __repr__(self):
        return "PackageLabel(%s, %s, sdk=%s)" % (
            self.package, self.status,
            self.sdk.name if self.sdk else None,
        )


def looks_obfuscated(java_package):
    """Heuristic for ProGuard-style obfuscated packages: short, opaque
    single-letter (or two-letter) segments such as ``a.b.c`` or ``o.a``."""
    parts = java_package.split(".")
    if len(parts) < 2:
        return False
    short = sum(1 for part in parts if len(part) <= 2)
    return short / len(parts) >= 0.75


class SdkLabeler:
    """Labels invoking Java packages against an SDK catalog."""

    def __init__(self, catalog):
        self.catalog = list(catalog)
        self._index = PlaySdkIndex()
        self._entry_to_profile = {}
        for profile in self.catalog:
            entry = SdkIndexEntry(
                profile.name, profile.category, profile.package_prefixes
            )
            self._index.register(entry)
            self._entry_to_profile[id(entry)] = profile

    def label(self, java_package):
        """Label one Java package (see module docstring for the policy)."""
        if java_package == GOOGLE_ANDROID_PREFIX or java_package.startswith(
            GOOGLE_ANDROID_PREFIX + "."
        ):
            return PackageLabel(java_package, PackageLabel.EXCLUDED)
        entry = self._index.lookup_package(java_package)
        if entry is not None:
            profile = self._entry_to_profile[id(entry)]
            if profile.obfuscated:
                return PackageLabel(java_package, PackageLabel.OBFUSCATED,
                                    sdk=profile)
            return PackageLabel(java_package, PackageLabel.KNOWN, sdk=profile)
        if looks_obfuscated(java_package):
            return PackageLabel(java_package, PackageLabel.OBFUSCATED)
        return PackageLabel(java_package, PackageLabel.UNKNOWN)

    def profile_for_package(self, java_package):
        """The SdkProfile owning ``java_package``, or None."""
        label = self.label(java_package)
        return label.sdk
