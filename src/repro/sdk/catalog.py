"""The SDK catalog: every SDK the paper names, plus the calibrated long tail.

Tables 3, 4 and 5 of the paper enumerate SDK types and the most popular
SDKs using WebViews and Custom Tabs, with per-SDK app counts out of the
146,558 analysed apps. This module encodes those SDKs — names, plausible
Java package prefixes, mechanisms, and target app counts — and synthesises
deterministic long-tail SDKs so per-type SDK counts sum to Table 3's totals
(125 WebView / 45 CT / 34 both).

The corpus generator samples SDK adoption from these targets; the static
pipeline then re-measures them, so benchmark output is a measurement of a
calibrated ecosystem rather than a restatement of constants.
"""

import enum

#: Total apps successfully analysed in the paper (Table 2) — the
#: denominator for all adoption-probability calibration.
PAPER_TOTAL_APPS = 146_558

#: Google's own SDK package, excluded from labelling "due to its multiple
#: essential functions" (Section 3.1.4).
GOOGLE_ANDROID_PREFIX = "com.google.android"


class SdkCategory(enum.Enum):
    """SDK use-case types from Table 3."""

    ADVERTISING = "Advertising"
    ENGAGEMENT = "Engagement"
    DEV_TOOLS = "Development Tools"
    PAYMENTS = "Payments"
    USER_SUPPORT = "User Support"
    SOCIAL = "Social"
    UTILITY = "Utility"
    AUTHENTICATION = "Authentication"
    HYBRID = "Hybrid Functionality"
    UNKNOWN = "Unknown"

    def __str__(self):
        return self.value


#: Table 3 reconstructed: (webview SDK count, CT SDK count, both count).
TABLE3_SDK_TYPE_COUNTS = {
    SdkCategory.ADVERTISING: (46, 3, 3),
    SdkCategory.PAYMENTS: (15, 6, 5),
    SdkCategory.DEV_TOOLS: (11, 7, 5),
    SdkCategory.ENGAGEMENT: (12, 0, 0),
    SdkCategory.SOCIAL: (10, 6, 4),
    SdkCategory.AUTHENTICATION: (7, 10, 6),
    SdkCategory.UNKNOWN: (10, 4, 4),
    SdkCategory.HYBRID: (6, 7, 5),
    SdkCategory.UTILITY: (4, 2, 2),
    SdkCategory.USER_SUPPORT: (4, 0, 0),
}

#: Per-SDK-type WebView API method-call probabilities (Figure 4 / Table 7).
#: Probability that an app embedding an SDK of this type has SDK code
#: calling each method. Anchored to the paper's stated observations: >45%
#: of ad-SDK apps expose a JS bridge and >30% inject JS (4.1.1); 48.5% of
#: payment apps expose a bridge (4.1.4); user-support SDKs always call
#: loadDataWithBaseURL and only 45.9% call loadUrl (4.1.5).
METHOD_PROFILES = {
    SdkCategory.ADVERTISING: {
        "loadUrl": 0.97, "addJavascriptInterface": 0.40,
        "evaluateJavascript": 0.26, "loadDataWithBaseURL": 0.47,
        "removeJavascriptInterface": 0.16, "loadData": 0.02, "postUrl": 0.03,
    },
    SdkCategory.ENGAGEMENT: {
        "loadUrl": 0.90, "addJavascriptInterface": 0.30,
        "evaluateJavascript": 0.34, "loadDataWithBaseURL": 0.55,
        "removeJavascriptInterface": 0.13, "loadData": 0.02, "postUrl": 0.02,
    },
    SdkCategory.DEV_TOOLS: {
        "loadUrl": 0.98, "addJavascriptInterface": 0.44,
        "evaluateJavascript": 0.40, "loadDataWithBaseURL": 0.26,
        "removeJavascriptInterface": 0.12, "loadData": 0.05, "postUrl": 0.05,
    },
    SdkCategory.PAYMENTS: {
        "loadUrl": 0.95, "addJavascriptInterface": 0.485,
        "evaluateJavascript": 0.35, "loadDataWithBaseURL": 0.25,
        "removeJavascriptInterface": 0.10, "loadData": 0.02, "postUrl": 0.30,
    },
    SdkCategory.USER_SUPPORT: {
        "loadUrl": 0.459, "addJavascriptInterface": 0.40,
        "evaluateJavascript": 0.30, "loadDataWithBaseURL": 1.0,
        "removeJavascriptInterface": 0.08, "loadData": 0.05, "postUrl": 0.01,
    },
    SdkCategory.SOCIAL: {
        "loadUrl": 0.98, "addJavascriptInterface": 0.30,
        "evaluateJavascript": 0.25, "loadDataWithBaseURL": 0.15,
        "removeJavascriptInterface": 0.07, "loadData": 0.01, "postUrl": 0.05,
    },
    SdkCategory.AUTHENTICATION: {
        "loadUrl": 0.97, "addJavascriptInterface": 0.25,
        "evaluateJavascript": 0.20, "loadDataWithBaseURL": 0.10,
        "removeJavascriptInterface": 0.06, "loadData": 0.01, "postUrl": 0.10,
    },
    SdkCategory.UTILITY: {
        "loadUrl": 0.90, "addJavascriptInterface": 0.40,
        "evaluateJavascript": 0.30, "loadDataWithBaseURL": 0.36,
        "removeJavascriptInterface": 0.10, "loadData": 0.05, "postUrl": 0.02,
    },
    SdkCategory.HYBRID: {
        "loadUrl": 0.95, "addJavascriptInterface": 0.70,
        "evaluateJavascript": 0.60, "loadDataWithBaseURL": 0.50,
        "removeJavascriptInterface": 0.18, "loadData": 0.10, "postUrl": 0.05,
    },
    SdkCategory.UNKNOWN: {
        "loadUrl": 0.85, "addJavascriptInterface": 0.35,
        "evaluateJavascript": 0.30, "loadDataWithBaseURL": 0.30,
        "removeJavascriptInterface": 0.10, "loadData": 0.05, "postUrl": 0.05,
    },
}


class SdkProfile:
    """One SDK: identity, packages, mechanisms and calibration targets."""

    def __init__(self, name, category, package_prefixes, webview_apps=0,
                 ct_apps=0, obfuscated=False, unknown_sdk=False,
                 defaults_to_webview=False):
        self.name = name
        self.category = category
        self.package_prefixes = tuple(package_prefixes)
        #: Target number of apps (out of PAPER_TOTAL_APPS) embedding this
        #: SDK's WebView / CT code paths.
        self.webview_apps = int(webview_apps)
        self.ct_apps = int(ct_apps)
        self.obfuscated = obfuscated
        self.unknown_sdk = unknown_sdk
        #: SDKs that support CTs but fall back to WebViews when no browser
        #: supports CTs (Section 4.1.4 hypothesis for the 5/6 dual SDKs).
        self.defaults_to_webview = defaults_to_webview

    @property
    def uses_webview(self):
        return self.webview_apps > 0

    @property
    def uses_customtabs(self):
        return self.ct_apps > 0

    @property
    def uses_both(self):
        return self.uses_webview and self.uses_customtabs

    @property
    def primary_package(self):
        return self.package_prefixes[0]

    @property
    def webview_probability(self):
        return self.webview_apps / PAPER_TOTAL_APPS

    @property
    def ct_probability(self):
        return self.ct_apps / PAPER_TOTAL_APPS

    def method_profile(self):
        return METHOD_PROFILES[self.category]

    def __repr__(self):
        return "SdkProfile(%s, %s, wv=%d, ct=%d)" % (
            self.name, self.category.name, self.webview_apps, self.ct_apps
        )


def _sdk(name, category, prefixes, webview_apps=0, ct_apps=0, **kwargs):
    return SdkProfile(name, category, prefixes, webview_apps, ct_apps,
                      **kwargs)


#: The named SDKs from Tables 4 and 5 (app counts straight from the paper).
_NAMED = [
    # -- Advertising (Table 4) --
    _sdk("AppLovin", SdkCategory.ADVERTISING, ["com.applovin"], 27_397),
    _sdk("ironSource", SdkCategory.ADVERTISING, ["com.ironsource"], 16_326),
    _sdk("ByteDance", SdkCategory.ADVERTISING, ["com.bytedance.sdk"], 13_080),
    _sdk("InMobi", SdkCategory.ADVERTISING, ["com.inmobi"], 10_066),
    _sdk("Digital Turbine", SdkCategory.ADVERTISING, ["com.fyber"], 8_654),
    # Advertising SDKs using CTs (all three also use WebViews, 4.1.1).
    _sdk("HyprMX", SdkCategory.ADVERTISING, ["com.hyprmx"], 900, 1_257),
    _sdk("Linkvertise", SdkCategory.ADVERTISING, ["com.linkvertise"], 250, 383),
    _sdk("Taboola", SdkCategory.ADVERTISING, ["com.taboola"], 400, 317),
    # -- Engagement (Table 4; no CT engagement SDKs observed) --
    _sdk("Open Measurement", SdkCategory.ENGAGEMENT, ["com.iab.omid"], 11_333),
    _sdk("SafeDK", SdkCategory.ENGAGEMENT, ["com.safedk"], 7_427),
    _sdk("Airship", SdkCategory.ENGAGEMENT, ["com.urbanairship"], 652),
    _sdk("Branch", SdkCategory.ENGAGEMENT, ["io.branch"], 514),
    # -- Development Tools --
    _sdk("Flutter", SdkCategory.DEV_TOOLS,
         ["io.flutter.plugins.urllauncher"], 5_568),
    _sdk("InAppWebView", SdkCategory.DEV_TOOLS,
         ["com.pichillilorenzo.flutter_inappwebview"], 1_868),
    _sdk("Corona", SdkCategory.DEV_TOOLS, ["com.ansca.corona"], 449),
    _sdk("AdvancedWebView", SdkCategory.DEV_TOOLS,
         ["im.delight.android.webview"], 386),
    _sdk("android-customtabs", SdkCategory.DEV_TOOLS,
         ["saschpe.android.customtabs"], 40, 53, defaults_to_webview=True),
    _sdk("GoodBarber", SdkCategory.DEV_TOOLS, ["com.goodbarber"], 35, 48,
         defaults_to_webview=True),
    _sdk("Mobiroller", SdkCategory.DEV_TOOLS, ["com.mobiroller"], 20, 27,
         defaults_to_webview=True),
    # -- Payments --
    _sdk("Stripe", SdkCategory.PAYMENTS, ["com.stripe"], 1_171),
    _sdk("RazorPay", SdkCategory.PAYMENTS, ["com.razorpay"], 484),
    _sdk("PayTM", SdkCategory.PAYMENTS, ["net.one97.paytm"], 400),
    _sdk("Juspay", SdkCategory.PAYMENTS, ["in.juspay"], 50, 77,
         defaults_to_webview=True),
    _sdk("Ticketmaster Checkout", SdkCategory.PAYMENTS,
         ["com.ticketmaster.checkout"], 30, 47, defaults_to_webview=True),
    _sdk("Checkout", SdkCategory.PAYMENTS, ["com.checkout"], 30, 47,
         defaults_to_webview=True),
    # -- User Support (no CT SDKs observed, 4.1.5) --
    _sdk("Zendesk", SdkCategory.USER_SUPPORT, ["zendesk.support"], 1_000),
    _sdk("Freshchat", SdkCategory.USER_SUPPORT, ["com.freshchat"], 438),
    _sdk("LicensesDialog", SdkCategory.USER_SUPPORT,
         ["de.psdev.licensesdialog"], 129),
    # -- Social --
    _sdk("VK", SdkCategory.SOCIAL, ["com.vk.sdk"], 456),
    _sdk("NAVER", SdkCategory.SOCIAL, ["com.navercorp.nid"], 406, 157),
    _sdk("Kakao", SdkCategory.SOCIAL, ["com.kakao.sdk"], 347, 54),
    _sdk("Facebook", SdkCategory.SOCIAL, ["com.facebook"], 0, 23_234),
    # -- Utility --
    _sdk("NAVER Maps", SdkCategory.UTILITY, ["com.naver.maps"], 130),
    _sdk("Barcode Scanner", SdkCategory.UTILITY, ["com.google.zxing"], 129),
    _sdk("Ticketmaster", SdkCategory.UTILITY, ["com.ticketmaster.presence"],
         64, 55, defaults_to_webview=True),
    _sdk("MyChart", SdkCategory.UTILITY, ["epic.mychart"], 10, 16),
    # -- Authentication --
    # Table 3 implies 6 of the 7 WebView auth SDKs also use CTs; we assign
    # the dual mechanism to NAVER (listed in both tables), Gigya and
    # Firebase, leaving Amazon Identity as the WebView-only holdout.
    _sdk("Gigya", SdkCategory.AUTHENTICATION, ["com.gigya"], 120, 15),
    _sdk("NAVER Identity", SdkCategory.AUTHENTICATION, ["com.nhn.android.login"],
         90, 81),
    _sdk("Amazon Identity", SdkCategory.AUTHENTICATION,
         ["com.amazon.identity"], 37),
    _sdk("Google Firebase", SdkCategory.AUTHENTICATION,
         ["com.google.firebase.auth"], 30, 7_565),
    _sdk("AdobePass", SdkCategory.AUTHENTICATION, ["com.adobe.adobepass"],
         0, 55),
    # -- Hybrid Functionality --
    _sdk("Baby Panda World", SdkCategory.HYBRID, ["com.sinyee.babybus"], 194),
    _sdk("SoftCraft", SdkCategory.HYBRID, ["com.softcraft"], 15, 12),
    _sdk("Cube Storm", SdkCategory.HYBRID, ["com.cubestorm"], 14, 14,
         defaults_to_webview=True),
    _sdk("Scripps News", SdkCategory.HYBRID, ["com.scripps.news"], 10, 13,
         defaults_to_webview=True),
]

#: Obfuscated long-tail package labels (4 in the paper).
_OBFUSCATED_PREFIXES = ["a.a.a", "b.c.d", "o.a", "x.y.z"]


def named_sdks():
    """The SDKs explicitly named in the paper's tables."""
    return list(_NAMED)


def _synthesize_tail(category, mechanism, index):
    """Create a deterministic long-tail SDK (each used by >100 apps)."""
    slug = category.name.lower().replace("_", "")
    if mechanism == "both":
        webview_apps = 110 + 13 * index
        ct_apps = 100 + 7 * index
    elif mechanism == "webview":
        webview_apps = 105 + 17 * (index % 19)
        ct_apps = 0
    else:
        webview_apps = 0
        ct_apps = 102 + 11 * (index % 13)
    name = "%s SDK %d" % (category.value, index + 1)
    prefix = "io.%s.tail%d" % (slug, index + 1)
    return SdkProfile(name, category, [prefix], webview_apps, ct_apps,
                      unknown_sdk=(category == SdkCategory.UNKNOWN))


def build_catalog():
    """Build the complete SDK catalog matching Table 3's per-type counts.

    Returns a list of :class:`SdkProfile` where, for every SDK type, the
    number of profiles using WebViews / CTs / both equals Table 3. Four of
    the Unknown-type WebView SDKs carry obfuscated package prefixes
    (Section 3.1.4's "4 obfuscated labels").
    """
    from repro.errors import CorpusError

    catalog = list(_NAMED)
    by_category = {}
    for profile in catalog:
        by_category.setdefault(profile.category, []).append(profile)

    obfuscated_budget = list(_OBFUSCATED_PREFIXES)
    for category, (wv_target, ct_target, both_target) in (
        TABLE3_SDK_TYPE_COUNTS.items()
    ):
        existing = by_category.get(category, [])
        wv_named = sum(1 for p in existing if p.uses_webview)
        ct_named = sum(1 for p in existing if p.uses_customtabs)
        both_named = sum(1 for p in existing if p.uses_both)

        synth_both = both_target - both_named
        synth_wv_only = (wv_target - wv_named) - synth_both
        synth_ct_only = (ct_target - ct_named) - synth_both
        if min(synth_both, synth_wv_only, synth_ct_only) < 0:
            raise CorpusError(
                "named SDKs for %s exceed Table 3 targets "
                "(wv=%d/%d ct=%d/%d both=%d/%d)"
                % (category.value, wv_named, wv_target, ct_named, ct_target,
                   both_named, both_target)
            )

        index = 0
        for _ in range(synth_both):
            catalog.append(_synthesize_tail(category, "both", index))
            index += 1
        for _ in range(synth_wv_only):
            profile = _synthesize_tail(category, "webview", index)
            if category == SdkCategory.UNKNOWN and obfuscated_budget:
                profile = SdkProfile(
                    "(obfuscated %d)" % (5 - len(obfuscated_budget)),
                    category, [obfuscated_budget.pop()],
                    profile.webview_apps, 0, obfuscated=True,
                    unknown_sdk=True,
                )
            catalog.append(profile)
            index += 1
        for _ in range(synth_ct_only):
            catalog.append(_synthesize_tail(category, "ct", index))
            index += 1

    return catalog
