"""repro.obs — observability for the study pipelines.

Three cooperating layers, all deterministic by default (see DESIGN.md
§Observability):

- **structured logging** (:mod:`repro.obs.logs`): a ``repro``-rooted
  logger hierarchy emitting ``event key=value`` records, with run/app
  context (package, snapshot date, stage) bound via a contextvar
  (:mod:`repro.obs.context`). The library never prints on its own;
  :func:`configure` opts a study in, honoring ``REPRO_LOG_LEVEL``.
- **metrics** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry` with
  ``Counter.labels(...)``-style children and JSON + Prometheus-text
  exporters, both of which round-trip.
- **span tracing** (:mod:`repro.obs.tracing`): ``trace_span("decompile",
  package=...)`` records nested spans with durations and error status,
  exportable as a JSON trace tree.

:class:`Obs` bundles one registry + tracer + clock for a single study
run; finished spans automatically feed the per-stage timing metrics every
run report is built from. A process-global default bundle backs
module-level instrumentation when no study installed its own.
"""

from repro.obs.context import bind_context, current_context
from repro.obs.logs import (
    LOG_LEVEL_ENV_VAR,
    StructuredLogger,
    configure,
    format_kv,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    TickClock,
    default_registry,
    parse_prometheus_text,
    validate_prometheus_text,
)
from repro.obs.progress import (
    PROGRESS_ENV_VAR,
    ProgressReporter,
    progress_enabled,
)
from repro.obs.report import (
    APPS_ANALYZED_METRIC,
    APPS_LISTED_METRIC,
    CRAWL_NETLOG_EVENTS_METRIC,
    CRAWL_VISIT_ENDPOINTS_METRIC,
    CRAWL_VISITS_METRIC,
    DROPS_METRIC,
    EXEC_BACKEND_METRIC,
    EXEC_CACHE_EVICTIONS_METRIC,
    EXEC_CACHE_HITS_METRIC,
    EXEC_CACHE_MISSES_METRIC,
    EXEC_CHUNK_SIZE_METRIC,
    EXEC_CHUNKS_REPAIRED_METRIC,
    EXEC_CLASS_BYTES_DEDUPED_METRIC,
    EXEC_CLASS_CACHE_HITS_METRIC,
    EXEC_CLASS_CACHE_MISSES_METRIC,
    EXEC_CLASS_TIME_SAVED_METRIC,
    EXEC_CRITICAL_PATH_METRIC,
    EXEC_QUEUE_DEPTH_METRIC,
    EXEC_STEALS_METRIC,
    EXEC_TASKS_METRIC,
    EXEC_TASKS_QUARANTINED_METRIC,
    EXEC_WORKER_BUSY_METRIC,
    EXEC_WORKERS_METRIC,
    ENDPOINTS_APPS_METRIC,
    ENDPOINTS_CLEARTEXT_METRIC,
    ENDPOINTS_CREDENTIALS_METRIC,
    ENDPOINTS_FOUND_METRIC,
    ENDPOINTS_SUMMARY_BYTES_DEDUPED_METRIC,
    ENDPOINTS_SUMMARY_CACHE_HITS_METRIC,
    ENDPOINTS_SUMMARY_CACHE_MISSES_METRIC,
    ENDPOINTS_SUMMARY_TIME_SAVED_METRIC,
    IMPACT_APPS_METRIC,
    IMPACT_BRIDGES_METRIC,
    IMPACT_CLEARTEXT_METRIC,
    IMPACT_FINDINGS_METRIC,
    IMPACT_FLOWS_METRIC,
    LONGITUDINAL_APPS_METRIC,
    LONGITUDINAL_CHECKPOINT_FLUSHES_METRIC,
    LONGITUDINAL_DELTA_METRIC,
    LONGITUDINAL_RUNS_METRIC,
    SCRIPT_CACHE_HITS_METRIC,
    SCRIPT_CACHE_MISSES_METRIC,
    SCRIPT_CACHE_TIME_SAVED_METRIC,
    STAGE_CALLS_METRIC,
    STAGE_ERRORS_METRIC,
    STAGE_SECONDS_METRIC,
    render_run_report,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    current_tracer,
    default_tracer,
    trace_span,
    use_tracer,
)


class Obs:
    """One study run's observability bundle: registry + tracer + clock.

    Every finished span feeds ``repro_stage_seconds_total{stage=<span
    name>}`` / ``repro_stage_calls_total`` (and ``..._errors_total`` on
    failure) in the bundle's registry, so stage time shares come for free
    wherever spans are opened. The default clock is a deterministic
    :class:`TickClock`; inject ``time.perf_counter`` for real timings.
    """

    def __init__(self, registry=None, tracer=None, clock=None):
        self.clock = clock if clock is not None else TickClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            tracer = Tracer(clock=self.clock, on_span_end=self._on_span_end)
        elif tracer.on_span_end is None:
            tracer.on_span_end = self._on_span_end
        self.tracer = tracer

    # -- tracing -------------------------------------------------------------

    def span(self, name, **attributes):
        return self.tracer.span(name, **attributes)

    def activate(self):
        """Bind this bundle's tracer as the active one for a block."""
        return use_tracer(self.tracer)

    def _on_span_end(self, span):
        stage_seconds = self.registry.counter(
            STAGE_SECONDS_METRIC,
            "Total clock units spent inside spans, by span name.",
            ("stage",),
        )
        stage_calls = self.registry.counter(
            STAGE_CALLS_METRIC, "Finished spans, by span name.", ("stage",),
        )
        stage_seconds.labels(stage=span.name).inc(span.duration)
        stage_calls.labels(stage=span.name).inc()
        if span.status == Span.ERROR:
            self.registry.counter(
                STAGE_ERRORS_METRIC,
                "Spans that finished in error status, by span name.",
                ("stage",),
            ).labels(stage=span.name).inc()

    # -- metrics -------------------------------------------------------------

    def counter(self, name, help="", labelnames=()):
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self.registry.gauge(name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None):
        if buckets is None:
            return self.registry.histogram(name, help, labelnames)
        return self.registry.histogram(name, help, labelnames, buckets)

    def run_report(self, title, items_label="apps", items_count=0,
                   root_span="run"):
        return render_run_report(self, title, items_label=items_label,
                                 items_count=items_count,
                                 root_span=root_span)

    def __repr__(self):
        return "Obs(%d metrics, %d root spans)" % (
            len(self.registry), len(self.tracer.roots)
        )


#: Process-global default bundle: wires the default tracer to the default
#: registry so standalone (non-study) calls still produce stage metrics.
_DEFAULT_OBS = Obs(registry=REGISTRY, tracer=default_tracer())

# Imported last: repro.obs.perf and repro.obs.store reach back into this
# package's submodules (report constants, the live Span/registry types).
from repro.obs.store import (  # noqa: E402
    OBS_DB_ENV_VAR,
    TelemetryStore,
    git_describe,
)


def default_obs():
    return _DEFAULT_OBS


__all__ = [
    "APPS_ANALYZED_METRIC",
    "APPS_LISTED_METRIC",
    "CRAWL_NETLOG_EVENTS_METRIC",
    "CRAWL_VISIT_ENDPOINTS_METRIC",
    "CRAWL_VISITS_METRIC",
    "Counter",
    "DROPS_METRIC",
    "EXEC_BACKEND_METRIC",
    "EXEC_CACHE_EVICTIONS_METRIC",
    "EXEC_CACHE_HITS_METRIC",
    "EXEC_CACHE_MISSES_METRIC",
    "EXEC_CHUNK_SIZE_METRIC",
    "EXEC_CHUNKS_REPAIRED_METRIC",
    "EXEC_CLASS_BYTES_DEDUPED_METRIC",
    "EXEC_CLASS_CACHE_HITS_METRIC",
    "EXEC_CLASS_CACHE_MISSES_METRIC",
    "EXEC_CLASS_TIME_SAVED_METRIC",
    "LONGITUDINAL_APPS_METRIC",
    "LONGITUDINAL_CHECKPOINT_FLUSHES_METRIC",
    "LONGITUDINAL_DELTA_METRIC",
    "LONGITUDINAL_RUNS_METRIC",
    "EXEC_CRITICAL_PATH_METRIC",
    "EXEC_QUEUE_DEPTH_METRIC",
    "EXEC_STEALS_METRIC",
    "EXEC_TASKS_METRIC",
    "EXEC_TASKS_QUARANTINED_METRIC",
    "EXEC_WORKER_BUSY_METRIC",
    "EXEC_WORKERS_METRIC",
    "ENDPOINTS_APPS_METRIC",
    "ENDPOINTS_CLEARTEXT_METRIC",
    "ENDPOINTS_CREDENTIALS_METRIC",
    "ENDPOINTS_FOUND_METRIC",
    "ENDPOINTS_SUMMARY_BYTES_DEDUPED_METRIC",
    "ENDPOINTS_SUMMARY_CACHE_HITS_METRIC",
    "ENDPOINTS_SUMMARY_CACHE_MISSES_METRIC",
    "ENDPOINTS_SUMMARY_TIME_SAVED_METRIC",
    "IMPACT_APPS_METRIC",
    "IMPACT_BRIDGES_METRIC",
    "IMPACT_CLEARTEXT_METRIC",
    "IMPACT_FINDINGS_METRIC",
    "IMPACT_FLOWS_METRIC",
    "Gauge",
    "Histogram",
    "LOG_LEVEL_ENV_VAR",
    "MetricsRegistry",
    "OBS_DB_ENV_VAR",
    "Obs",
    "PROGRESS_ENV_VAR",
    "ProgressReporter",
    "REGISTRY",
    "SCRIPT_CACHE_HITS_METRIC",
    "SCRIPT_CACHE_MISSES_METRIC",
    "SCRIPT_CACHE_TIME_SAVED_METRIC",
    "STAGE_CALLS_METRIC",
    "STAGE_ERRORS_METRIC",
    "STAGE_SECONDS_METRIC",
    "Span",
    "StructuredLogger",
    "TelemetryStore",
    "TickClock",
    "Tracer",
    "bind_context",
    "configure",
    "current_context",
    "current_tracer",
    "default_obs",
    "default_registry",
    "default_tracer",
    "format_kv",
    "get_logger",
    "git_describe",
    "parse_prometheus_text",
    "progress_enabled",
    "render_run_report",
    "trace_span",
    "use_tracer",
    "validate_prometheus_text",
]
