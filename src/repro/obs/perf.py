"""Critical-path profiling and regression detection over telemetry.

Three analysis layers on top of persisted (or live) observability state:

- :func:`profile` walks a span forest and computes per-stage **self
  time** (duration minus child durations — what the stage itself cost,
  not what it contained) and the **critical path**: the longest
  dependency chain through the tree, where sibling spans attributed to
  different workers (``worker`` span attribute, set by the exec layer's
  deterministic schedule simulation) run in parallel and everything else
  runs sequentially. The run report's "Profile" section is rendered from
  this.
- :func:`flamegraph` folds the same forest into collapsed-stack text
  (``run;execute;analyze_app 1234`` per line) renderable by standard
  flamegraph tooling. Counts are integer micro-clock-units, stacks are
  span-name paths, and lines are sorted — so under a deterministic
  :class:`~repro.obs.metrics.TickClock` the output is byte-identical
  across worker counts and backends.
- :func:`compare` / :func:`check` diff two runs' registries (per-stage
  latency, cache hit rates, drop rate) against configurable
  :class:`Thresholds`; ``python -m repro.obs.store check`` wires this
  into CI as a soft regression gate, with the baseline taken as the
  per-metric median of the last N stored runs.

All thresholds are overridable via environment variables, validated
eagerly with actionable error messages (a typo'd ``REPRO_OBS_STAGE_RATIO``
fails at startup, not after the run it was meant to gate).
"""

import os
import statistics

from repro.obs.report import (
    APPS_LISTED_METRIC,
    DROPS_METRIC,
    EXEC_CACHE_HITS_METRIC,
    EXEC_CACHE_MISSES_METRIC,
    EXEC_CLASS_CACHE_HITS_METRIC,
    EXEC_CLASS_CACHE_MISSES_METRIC,
    SCRIPT_CACHE_HITS_METRIC,
    SCRIPT_CACHE_MISSES_METRIC,
    STAGE_CALLS_METRIC,
    STAGE_SECONDS_METRIC,
)

#: Threshold environment variables (see :class:`Thresholds`).
STAGE_RATIO_ENV_VAR = "REPRO_OBS_STAGE_RATIO"
MIN_STAGE_SECONDS_ENV_VAR = "REPRO_OBS_MIN_STAGE_SECONDS"
HIT_RATE_DROP_ENV_VAR = "REPRO_OBS_HIT_RATE_DROP"
DROP_RATE_INCREASE_ENV_VAR = "REPRO_OBS_DROP_RATE_INCREASE"
BASELINE_WINDOW_ENV_VAR = "REPRO_OBS_BASELINE_WINDOW"

#: Flamegraph counts are durations scaled to integer micro-clock-units.
_FLAME_SCALE = 1_000_000


# -- span-tree profiling ------------------------------------------------------


def span_self_time(span):
    """Duration minus child durations, clamped at zero (open spans: 0).

    Spans whose children carry a ``worker`` attribute are *scheduler*
    spans — "execute", a crawl fan-out — and get self time 0: their
    apparent own time is clock bookkeeping that differs by backend
    (inline children tick the parent's clock; process workers tick
    their own), not work, and attributing it would make otherwise
    identical runs profile differently across backends.
    """
    if span.end is None:
        return 0.0
    if any(child.attributes.get("worker") is not None
           for child in span.children):
        return 0.0
    children = sum(child.duration for child in span.children
                   if child.end is not None)
    return max(0.0, span.duration - children)


def _child_groups(span):
    """Split children into (sequential, parallel worker groups).

    Children carrying a ``worker`` attribute are shards the exec layer's
    deterministic schedule assigned to workers: same worker value means
    sequential on that worker, different values mean parallel. Children
    without the attribute are ordinary nested stages, sequential with
    their siblings.
    """
    sequential = []
    workers = {}
    for child in span.children:
        worker = child.attributes.get("worker")
        if worker is None:
            sequential.append(child)
        else:
            workers.setdefault(worker, []).append(child)
    return sequential, workers


def critical_path(span):
    """(length, spans) of the longest dependency chain through ``span``.

    Sequential children all lie on the path; of parallel worker groups
    only the slowest group does (ties break on the lowest worker label,
    keeping the walk deterministic). The returned spans are in walk
    order, starting with ``span`` itself.
    """
    length = span_self_time(span)
    path = [span]
    sequential, workers = _child_groups(span)
    for child in sequential:
        child_length, child_path = critical_path(child)
        length += child_length
        path.extend(child_path)
    if workers:
        best = None
        for worker in sorted(workers):
            group_length = 0.0
            group_path = []
            for child in workers[worker]:
                child_length, child_path = critical_path(child)
                group_length += child_length
                group_path.extend(child_path)
            if best is None or group_length > best[0]:
                best = (group_length, group_path)
        length += best[0]
        path.extend(best[1])
    return length, path


class StageProfile:
    """Aggregated timing for one span name across a forest."""

    __slots__ = ("name", "self_time", "total_time", "calls", "path_time")

    def __init__(self, name):
        self.name = name
        self.self_time = 0.0
        self.total_time = 0.0
        self.calls = 0
        #: Self time of this stage's spans that lie on the critical path.
        self.path_time = 0.0

    def as_dict(self):
        return {
            "stage": self.name,
            "self": self.self_time,
            "total": self.total_time,
            "calls": self.calls,
            "critical_path": self.path_time,
        }

    def __repr__(self):
        return "StageProfile(%s, self=%.3f, calls=%d)" % (
            self.name, self.self_time, self.calls
        )


class Profile:
    """Per-stage self times plus the forest's critical path."""

    def __init__(self, stages, critical_length, path):
        #: ``{span name: StageProfile}``.
        self.stages = stages
        #: Length of the critical path through the whole forest.
        self.critical_length = critical_length
        #: The spans on that path, in walk order.
        self.path = path

    def ordered(self):
        """Stages by descending self time (name-tiebroken, stable)."""
        return sorted(self.stages.values(),
                      key=lambda stage: (-stage.self_time, stage.name))

    def path_share(self, name):
        """Fraction of the critical path spent in ``name``'s self time."""
        stage = self.stages.get(name)
        if stage is None or not self.critical_length:
            return 0.0
        return stage.path_time / self.critical_length

    def __repr__(self):
        return "Profile(%d stages, critical=%.3f)" % (
            len(self.stages), self.critical_length
        )


def profile(roots):
    """Build a :class:`Profile` for a span forest (or a Tracer's roots)."""
    roots = _coerce_roots(roots)
    stages = {}
    for root in roots:
        for span in root.iter_spans():
            stage = stages.get(span.name)
            if stage is None:
                stage = stages[span.name] = StageProfile(span.name)
            stage.self_time += span_self_time(span)
            if span.end is not None:
                stage.total_time += span.duration
                stage.calls += 1
    # Roots execute sequentially (one study run after another), so the
    # forest's critical path is the sum of the per-root paths.
    critical_length = 0.0
    path = []
    for root in roots:
        root_length, root_path = critical_path(root)
        critical_length += root_length
        path.extend(root_path)
    for span in path:
        stages[span.name].path_time += span_self_time(span)
    return Profile(stages, critical_length, path)


def _coerce_roots(roots):
    if hasattr(roots, "roots"):  # a Tracer
        return list(roots.roots)
    return list(roots)


# -- flamegraph export --------------------------------------------------------


def flamegraph(roots):
    """Fold a span forest into collapsed-stack flamegraph text.

    One ``frame;frame;frame count`` line per distinct span-name stack,
    counts in integer micro-clock-units of *self* time, lines sorted
    lexicographically. Zero-self-time stacks are kept (they document
    structure); open spans contribute no time. The output depends only
    on span names and durations — never on attributes, worker
    assignments or completion order — so deterministic runs fold to
    byte-identical text at any worker count or backend.
    """
    folded = {}

    def walk(span, prefix):
        stack = prefix + (span.name,)
        weight = int(round(span_self_time(span) * _FLAME_SCALE))
        folded[stack] = folded.get(stack, 0) + weight
        for child in span.children:
            walk(child, stack)

    for root in _coerce_roots(roots):
        walk(root, ())
    lines = ["%s %d" % (";".join(stack), count)
             for stack, count in sorted(folded.items())]
    return "\n".join(lines) + "\n" if lines else ""


# -- regression detection -----------------------------------------------------


class ThresholdError(ValueError):
    """Raised for invalid regression-threshold configuration."""


def _env_float(name, default, minimum=None, maximum=None):
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ThresholdError(
            "%s=%r is not a number; expected a float like %g"
            % (name, raw, default)
        )
    if minimum is not None and value < minimum:
        raise ThresholdError(
            "%s=%g is below the minimum %g" % (name, value, minimum)
        )
    if maximum is not None and value > maximum:
        raise ThresholdError(
            "%s=%g is above the maximum %g" % (name, value, maximum)
        )
    return value


def _env_int(name, default, minimum=1):
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ThresholdError(
            "%s=%r is not an integer; expected a count like %d"
            % (name, raw, default)
        )
    if value < minimum:
        raise ThresholdError(
            "%s=%d must be at least %d" % (name, value, minimum)
        )
    return value


class Thresholds:
    """Regression gates for :func:`compare`, env-overridable.

    ``stage_ratio``: a stage's per-call latency must grow by more than
    this factor (and the stage must cost at least ``min_stage_seconds``
    in the latest run) to count as a regression. ``hit_rate_drop`` and
    ``drop_rate_increase`` are absolute changes in [0, 1].
    """

    def __init__(self, stage_ratio=None, min_stage_seconds=None,
                 hit_rate_drop=None, drop_rate_increase=None):
        self.stage_ratio = (
            stage_ratio if stage_ratio is not None
            else _env_float(STAGE_RATIO_ENV_VAR, 1.5, minimum=1.0)
        )
        self.min_stage_seconds = (
            min_stage_seconds if min_stage_seconds is not None
            else _env_float(MIN_STAGE_SECONDS_ENV_VAR, 0.005, minimum=0.0)
        )
        self.hit_rate_drop = (
            hit_rate_drop if hit_rate_drop is not None
            else _env_float(HIT_RATE_DROP_ENV_VAR, 0.05,
                            minimum=0.0, maximum=1.0)
        )
        self.drop_rate_increase = (
            drop_rate_increase if drop_rate_increase is not None
            else _env_float(DROP_RATE_INCREASE_ENV_VAR, 0.02,
                            minimum=0.0, maximum=1.0)
        )

    @staticmethod
    def baseline_window():
        """How many prior runs the ``check`` baseline median spans."""
        return _env_int(BASELINE_WINDOW_ENV_VAR, 5)

    def __repr__(self):
        return ("Thresholds(stage_ratio=%g, hit_rate_drop=%g, "
                "drop_rate_increase=%g)"
                % (self.stage_ratio, self.hit_rate_drop,
                   self.drop_rate_increase))


class Finding:
    """One metric's baseline-vs-latest comparison."""

    __slots__ = ("metric", "baseline", "latest", "breach", "detail")

    def __init__(self, metric, baseline, latest, breach, detail):
        self.metric = metric
        self.baseline = baseline
        self.latest = latest
        self.breach = breach
        self.detail = detail

    def as_dict(self):
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "latest": self.latest,
            "breach": self.breach,
            "detail": self.detail,
        }

    def __repr__(self):
        flag = "REGRESSION" if self.breach else "ok"
        return "Finding(%s, %s: %s)" % (self.metric, flag, self.detail)


def run_stats(registry):
    """The comparable facts of one run's registry.

    ``stages`` maps span name to mean per-call latency, ``hit_rates``
    maps cache tier to hit rate (only tiers the run exercised), and
    ``drop_rate`` is drops over listed apps (None when nothing was
    listed). Works on live registries and on snapshots rebuilt from the
    telemetry store alike.
    """
    seconds = {labels[0]: value for labels, value
               in registry.label_values(STAGE_SECONDS_METRIC).items()}
    calls = {labels[0]: value for labels, value
             in registry.label_values(STAGE_CALLS_METRIC).items()}
    stages = {
        name: total / calls[name]
        for name, total in seconds.items()
        if calls.get(name)
    }
    stage_totals = dict(seconds)

    hit_rates = {}
    for tier, hits_metric, misses_metric in (
        ("apk", EXEC_CACHE_HITS_METRIC, EXEC_CACHE_MISSES_METRIC),
        ("class", EXEC_CLASS_CACHE_HITS_METRIC,
         EXEC_CLASS_CACHE_MISSES_METRIC),
        ("script", SCRIPT_CACHE_HITS_METRIC, SCRIPT_CACHE_MISSES_METRIC),
    ):
        if registry.get(hits_metric) is None:
            continue
        hits = registry.value(hits_metric)
        misses = registry.value(misses_metric)
        if hits + misses:
            hit_rates[tier] = hits / (hits + misses)

    listed = registry.value(APPS_LISTED_METRIC)
    drops = sum(registry.label_values(DROPS_METRIC).values())
    drop_rate = drops / listed if listed else None
    return {
        "stages": stages,
        "stage_totals": stage_totals,
        "hit_rates": hit_rates,
        "drop_rate": drop_rate,
    }


def _median_stats(stats_list):
    """Per-metric medians across a baseline window of run stats."""
    merged = {"stages": {}, "stage_totals": {}, "hit_rates": {},
              "drop_rate": None}
    for key in ("stages", "stage_totals", "hit_rates"):
        names = sorted({name for stats in stats_list
                        for name in stats[key]})
        for name in names:
            values = [stats[key][name] for stats in stats_list
                      if name in stats[key]]
            merged[key][name] = statistics.median(values)
    drop_rates = [stats["drop_rate"] for stats in stats_list
                  if stats["drop_rate"] is not None]
    if drop_rates:
        merged["drop_rate"] = statistics.median(drop_rates)
    return merged


def compare(baseline, latest, thresholds=None):
    """Compare two runs' stats; returns a list of :class:`Finding`.

    ``baseline`` and ``latest`` are :func:`run_stats` dicts (or
    registries, coerced automatically). Only metrics present on both
    sides are compared; a stage that disappeared or appeared is
    reported as an informational (non-breach) finding.
    """
    thresholds = thresholds or Thresholds()
    baseline = _coerce_stats(baseline)
    latest = _coerce_stats(latest)
    findings = []

    for name in sorted(set(baseline["stages"]) | set(latest["stages"])):
        base = baseline["stages"].get(name)
        new = latest["stages"].get(name)
        if base is None or new is None:
            findings.append(Finding(
                "stage:%s" % name, base, new, False,
                "stage only present in %s run"
                % ("latest" if base is None else "baseline"),
            ))
            continue
        total = latest["stage_totals"].get(name, 0.0)
        ratio = new / base if base else float("inf") if new else 1.0
        breach = (ratio > thresholds.stage_ratio
                  and total >= thresholds.min_stage_seconds)
        findings.append(Finding(
            "stage:%s" % name, base, new, breach,
            "per-call latency %.6g -> %.6g (%.2fx, gate %.2fx)"
            % (base, new, ratio, thresholds.stage_ratio),
        ))

    for tier in sorted(set(baseline["hit_rates"]) & set(latest["hit_rates"])):
        base = baseline["hit_rates"][tier]
        new = latest["hit_rates"][tier]
        drop = base - new
        breach = drop > thresholds.hit_rate_drop
        findings.append(Finding(
            "hit_rate:%s" % tier, base, new, breach,
            "%s-cache hit rate %.1f%% -> %.1f%% (gate -%.1f points)"
            % (tier, 100 * base, 100 * new,
               100 * thresholds.hit_rate_drop),
        ))

    if (baseline["drop_rate"] is not None
            and latest["drop_rate"] is not None):
        base = baseline["drop_rate"]
        new = latest["drop_rate"]
        breach = (new - base) > thresholds.drop_rate_increase
        findings.append(Finding(
            "drop_rate", base, new, breach,
            "drop rate %.2f%% -> %.2f%% (gate +%.2f points)"
            % (100 * base, 100 * new,
               100 * thresholds.drop_rate_increase),
        ))
    return findings


def _coerce_stats(value):
    if isinstance(value, dict) and "stages" in value:
        return value
    return run_stats(value)


def check_window(stats_window, latest, thresholds=None):
    """Gate ``latest`` against the median of a window of prior stats.

    Returns ``(findings, breaches)`` — an empty window yields no
    findings (nothing to gate against is a pass, not a failure).
    """
    if not stats_window:
        return [], []
    baseline = _median_stats([_coerce_stats(s) for s in stats_window])
    findings = compare(baseline, latest, thresholds)
    return findings, [f for f in findings if f.breach]
