"""Structured key=value logging on a ``repro``-rooted logger hierarchy.

Instrumented code logs *events with fields*, not prose::

    logger = get_logger("static.pipeline")
    logger.info("download", package="com.example.app", size=41_210)
    # -> repro.static.pipeline: download package=com.example.app size=41210

Fields bound via :func:`repro.obs.context.bind_context` (package name,
snapshot date, stage) are merged into every record emitted inside the
binding, so call sites only pass what is locally interesting.

The library itself never prints: ``repro.__init__`` attaches a
``NullHandler`` to the ``repro`` root. Studies opt in with
:func:`configure`, which honors the ``REPRO_LOG_LEVEL`` environment
variable.
"""

import logging
import os

from repro.obs.context import current_context

ROOT_LOGGER_NAME = "repro"

#: Environment variable consulted by :func:`configure` for the default level.
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"


def format_kv(fields):
    """Render fields as ``key=value`` pairs, quoting values with spaces."""
    parts = []
    for key in fields:
        value = fields[key]
        text = str(value)
        if text == "" or any(ch in text for ch in ' "='):
            text = '"%s"' % text.replace('"', '\\"')
        parts.append("%s=%s" % (key, text))
    return " ".join(parts)


class StructuredLogger:
    """A thin wrapper emitting ``event key=value ...`` records.

    The merged fields also travel on the record as ``record.repro_fields``
    so custom handlers can consume them structurally.
    """

    def __init__(self, logger):
        self.logger = logger

    @property
    def name(self):
        return self.logger.name

    def isEnabledFor(self, level):
        return self.logger.isEnabledFor(level)

    def log(self, level, event, **fields):
        if not self.logger.isEnabledFor(level):
            return
        merged = current_context()
        merged.update(fields)
        message = event
        if merged:
            message = "%s %s" % (event, format_kv(merged))
        self.logger.log(level, message,
                        extra={"repro_fields": dict(merged),
                               "repro_event": event})

    def debug(self, event, **fields):
        self.log(logging.DEBUG, event, **fields)

    def info(self, event, **fields):
        self.log(logging.INFO, event, **fields)

    def warning(self, event, **fields):
        self.log(logging.WARNING, event, **fields)

    def error(self, event, **fields):
        self.log(logging.ERROR, event, **fields)

    def __repr__(self):
        return "StructuredLogger(%s)" % self.logger.name


def get_logger(name=""):
    """A :class:`StructuredLogger` under the ``repro`` hierarchy.

    ``get_logger("static.pipeline")`` -> ``repro.static.pipeline``; an
    already-qualified ``repro...`` name or the empty string (the root) are
    used as-is.
    """
    if not name:
        qualified = ROOT_LOGGER_NAME
    elif name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        qualified = name
    else:
        qualified = "%s.%s" % (ROOT_LOGGER_NAME, name)
    return StructuredLogger(logging.getLogger(qualified))


#: Level names accepted (case-insensitively) by :func:`resolve_level`.
VALID_LEVEL_NAMES = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def resolve_level(level=None):
    """Resolve a level name/number, consulting ``REPRO_LOG_LEVEL`` last.

    A bad value raises :class:`ValueError` immediately — naming the
    environment variable when that is where the value came from — so a
    typo'd ``REPRO_LOG_LEVEL=vrebose`` fails at :func:`configure` time
    with an actionable message instead of deep inside a run.
    """
    source = None
    if level is None:
        env_value = os.environ.get(LOG_LEVEL_ENV_VAR)
        if env_value:
            level, source = env_value, LOG_LEVEL_ENV_VAR
        else:
            level = logging.INFO
    if isinstance(level, str):
        text = level.strip()
        if text.isdigit():
            return int(text)
        resolved = logging.getLevelName(text.upper())
        if not isinstance(resolved, int):
            where = (" (from the %s environment variable)" % source
                     if source else "")
            raise ValueError(
                "unknown log level %r%s; use one of %s or a numeric level"
                % (level, where, "/".join(VALID_LEVEL_NAMES))
            )
        return resolved
    return int(level)


class _ReproHandler(logging.StreamHandler):
    """Marker subclass so :func:`configure` stays idempotent."""


def configure(level=None, stream=None, fmt=None):
    """Opt the ``repro`` hierarchy into emitting records.

    Attaches one stream handler to the ``repro`` root (replacing any
    handler from a previous :func:`configure` call) and sets the level —
    from the argument, else the ``REPRO_LOG_LEVEL`` environment variable,
    else ``INFO``. Returns the handler.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = resolve_level(level)
    for handler in list(root.handlers):
        if isinstance(handler, _ReproHandler):
            root.removeHandler(handler)
    handler = _ReproHandler(stream)
    handler.setFormatter(logging.Formatter(
        fmt or "%(asctime)s %(levelname)s %(name)s: %(message)s"
    ))
    root.addHandler(handler)
    root.setLevel(resolved)
    return handler
