"""Run reports: a pipeline-health summary rendered as markdown.

:func:`render_run_report` turns one study's :class:`~repro.obs.Obs`
bundle into the report the benchmarks print next to their
paper-vs-measured blocks: throughput, the drop taxonomy, and per-stage
time shares. Tables go through :mod:`repro.reporting` so the output
matches every other artifact the repo renders.
"""

from repro.reporting import Table
from repro.reporting.markdown import table_to_markdown

#: Stage timing metrics fed automatically by :class:`repro.obs.Obs`.
STAGE_SECONDS_METRIC = "repro_stage_seconds_total"
STAGE_CALLS_METRIC = "repro_stage_calls_total"
STAGE_ERRORS_METRIC = "repro_stage_errors_total"

#: Static-pipeline funnel metrics.
APPS_LISTED_METRIC = "repro_pipeline_apps_listed_total"
APPS_ANALYZED_METRIC = "repro_pipeline_apps_analyzed_total"
DROPS_METRIC = "repro_pipeline_drops_total"


def elapsed_for(tracer, root_span):
    """Total duration of every span named ``root_span`` in the forest."""
    return sum(
        span.duration for span in tracer.iter_spans()
        if span.name == root_span
    )


def render_run_report(obs, title, items_label="apps", items_count=0,
                      root_span="run", drop_metric=DROPS_METRIC):
    """Render the throughput / drops / stage-share report as markdown.

    Durations are in the bundle's clock units — real seconds when a real
    clock was injected, deterministic ticks otherwise (the report labels
    them "clock s" either way; see DESIGN.md §Observability).
    """
    sections = [_throughput_table(obs, items_label, items_count, root_span)]
    drops = _drop_table(obs, drop_metric)
    if drops is not None:
        sections.append(drops)
    stages = _stage_table(obs, elapsed_for(obs.tracer, root_span))
    if stages is not None:
        sections.append(stages)
    rendered = "\n\n".join(table_to_markdown(table) for table in sections)
    return "**%s**\n\n%s" % (title, rendered)


def _throughput_table(obs, items_label, items_count, root_span):
    elapsed = elapsed_for(obs.tracer, root_span)
    rate = items_count / elapsed if elapsed else 0.0
    table = Table(["metric", "value"], title="Throughput")
    table.add_row("%s processed" % items_label, items_count)
    table.add_row("elapsed (clock s)", "%.3f" % elapsed)
    table.add_row("%s/sec" % items_label, "%.1f" % rate)
    return table

def _drop_table(obs, drop_metric):
    drops = obs.registry.label_values(drop_metric)
    if not drops:
        return None
    table = Table(["drop reason", "count"], title="Drop taxonomy")
    ordered = sorted(drops.items(), key=lambda item: (-item[1], item[0]))
    for labels, count in ordered:
        table.add_row(labels[0], int(count))
    table.add_row("total", int(sum(drops.values())))
    return table


def _stage_table(obs, elapsed):
    seconds = obs.registry.label_values(STAGE_SECONDS_METRIC)
    if not seconds:
        return None
    calls = obs.registry.label_values(STAGE_CALLS_METRIC)
    # Shares are relative to the root span's elapsed time; nested spans
    # overlap their parents, so columns intentionally do not sum to 100.
    total = elapsed or sum(seconds.values()) or 1.0
    table = Table(["stage", "clock s", "share %", "calls"],
                  title="Stage time shares (of root elapsed; spans nest)")
    ordered = sorted(seconds.items(), key=lambda item: (-item[1], item[0]))
    for labels, value in ordered:
        table.add_row(
            labels[0],
            "%.3f" % value,
            "%.1f" % (100.0 * value / total),
            int(calls.get(labels, 0)),
        )
    return table
