"""Run reports: a pipeline-health summary rendered as markdown.

:func:`render_run_report` turns one study's :class:`~repro.obs.Obs`
bundle into the report the benchmarks print next to their
paper-vs-measured blocks: throughput, the drop taxonomy, and per-stage
time shares. Tables go through :mod:`repro.reporting` so the output
matches every other artifact the repo renders.
"""

from repro.reporting import Table
from repro.reporting.markdown import table_to_markdown

#: Stage timing metrics fed automatically by :class:`repro.obs.Obs`.
STAGE_SECONDS_METRIC = "repro_stage_seconds_total"
STAGE_CALLS_METRIC = "repro_stage_calls_total"
STAGE_ERRORS_METRIC = "repro_stage_errors_total"

#: Static-pipeline funnel metrics.
APPS_LISTED_METRIC = "repro_pipeline_apps_listed_total"
APPS_ANALYZED_METRIC = "repro_pipeline_apps_analyzed_total"
DROPS_METRIC = "repro_pipeline_drops_total"

#: Parallel-execution metrics (repro.exec), fed by the sharded pipeline.
EXEC_BACKEND_METRIC = "repro_exec_backend_info"
EXEC_WORKERS_METRIC = "repro_exec_workers"
EXEC_CHUNK_SIZE_METRIC = "repro_exec_chunk_size"
EXEC_TASKS_METRIC = "repro_exec_tasks_total"
EXEC_QUEUE_DEPTH_METRIC = "repro_exec_queue_depth_peak"
EXEC_WORKER_BUSY_METRIC = "repro_exec_worker_busy_seconds_total"
EXEC_CRITICAL_PATH_METRIC = "repro_exec_critical_path_seconds"
EXEC_CACHE_HITS_METRIC = "repro_exec_cache_hits_total"
EXEC_CACHE_MISSES_METRIC = "repro_exec_cache_misses_total"
EXEC_CACHE_EVICTIONS_METRIC = "repro_exec_cache_evictions_total"

#: Streaming-scheduler metrics (repro.exec.stream) and the repair
#: counters shared with the pooled path: simulated work-steal events,
#: chunks re-run after worker death, and tasks quarantined into the
#: drop taxonomy once the retry budget ran out.
EXEC_STEALS_METRIC = "repro_exec_steals_total"
EXEC_CHUNKS_REPAIRED_METRIC = "repro_exec_chunks_repaired_total"
EXEC_TASKS_QUARANTINED_METRIC = "repro_exec_tasks_quarantined_total"

#: Class-level content-addressed cache metrics (repro.exec two-tier
#: store), accounted deterministically by replaying per-APK digest
#: streams in selection order — never from worker-local hit counts.
EXEC_CLASS_CACHE_HITS_METRIC = "repro_exec_class_cache_hits_total"
EXEC_CLASS_CACHE_MISSES_METRIC = "repro_exec_class_cache_misses_total"
EXEC_CLASS_BYTES_DEDUPED_METRIC = "repro_exec_class_bytes_deduped_total"
EXEC_CLASS_TIME_SAVED_METRIC = "repro_exec_class_time_saved_seconds_total"

#: Dynamic-pipeline crawl metrics (repro.dynamic.crawler).
CRAWL_VISITS_METRIC = "repro_crawl_visits_total"
CRAWL_NETLOG_EVENTS_METRIC = "repro_crawl_netlog_events_total"
CRAWL_VISIT_ENDPOINTS_METRIC = "repro_crawl_visit_endpoints"

#: Compiled-script cache metrics (repro.web.jsengine), accounted by the
#: crawler's deterministic selection-order replay of per-visit
#: ``(digest, parse cost)`` streams — recorded whether the cache is
#: enabled or not, so the exported registry is identical either way.
SCRIPT_CACHE_HITS_METRIC = "repro_script_cache_hits_total"
SCRIPT_CACHE_MISSES_METRIC = "repro_script_cache_misses_total"
SCRIPT_CACHE_TIME_SAVED_METRIC = "repro_script_cache_time_saved_seconds_total"

#: Injection-impact census metrics (repro.impact), recorded in
#: selection order during the merge so they are byte-identical at any
#: worker count, backend, and streaming setting.
IMPACT_APPS_METRIC = "repro_impact_apps_total"
IMPACT_BRIDGES_METRIC = "repro_impact_bridges_total"
IMPACT_FINDINGS_METRIC = "repro_impact_findings_total"
IMPACT_FLOWS_METRIC = "repro_impact_taint_flows_total"
IMPACT_CLEARTEXT_METRIC = "repro_impact_cleartext_visits_total"

#: Static endpoint census metrics (repro.endpoints), recorded in
#: selection order during the merge (same determinism contract as the
#: impact census); the summary-cache counters come from the
#: selection-order digest replay, never from worker-local counts.
ENDPOINTS_APPS_METRIC = "repro_endpoints_apps_total"
ENDPOINTS_FOUND_METRIC = "repro_endpoints_found_total"
ENDPOINTS_CLEARTEXT_METRIC = "repro_endpoints_cleartext_total"
ENDPOINTS_CREDENTIALS_METRIC = "repro_endpoints_credentials_total"
ENDPOINTS_SUMMARY_CACHE_HITS_METRIC = "repro_endpoints_summary_hits_total"
ENDPOINTS_SUMMARY_CACHE_MISSES_METRIC = "repro_endpoints_summary_misses_total"
ENDPOINTS_SUMMARY_TIME_SAVED_METRIC = (
    "repro_endpoints_summary_time_saved_seconds_total"
)
ENDPOINTS_SUMMARY_BYTES_DEDUPED_METRIC = (
    "repro_endpoints_summary_bytes_deduped_total"
)

#: Longitudinal engine metrics (repro.longitudinal), fed per snapshot run.
LONGITUDINAL_APPS_METRIC = "repro_longitudinal_apps_total"
LONGITUDINAL_DELTA_METRIC = "repro_longitudinal_delta_apps_total"
LONGITUDINAL_RUNS_METRIC = "repro_longitudinal_runs_total"
LONGITUDINAL_CHECKPOINT_FLUSHES_METRIC = (
    "repro_longitudinal_checkpoint_flushes_total"
)


def elapsed_for(tracer, root_span):
    """Total duration of every span named ``root_span`` in the forest."""
    return sum(
        span.duration for span in tracer.iter_spans()
        if span.name == root_span
    )


def render_run_report(obs, title, items_label="apps", items_count=0,
                      root_span="run", drop_metric=DROPS_METRIC):
    """Render the throughput / drops / stage-share report as markdown.

    Durations are in the bundle's clock units — real seconds when a real
    clock was injected, deterministic ticks otherwise (the report labels
    them "clock s" either way; see DESIGN.md §Observability).
    """
    sections = [_throughput_table(obs, items_label, items_count, root_span)]
    execution = _exec_table(obs)
    if execution is not None:
        sections.append(execution)
    dynamic = _dynamic_table(obs)
    if dynamic is not None:
        sections.append(dynamic)
    impact = _impact_table(obs)
    if impact is not None:
        sections.append(impact)
    endpoints = _endpoints_table(obs)
    if endpoints is not None:
        sections.append(endpoints)
    longitudinal = _longitudinal_table(obs)
    if longitudinal is not None:
        sections.append(longitudinal)
    drops = _drop_table(obs, drop_metric)
    if drops is not None:
        sections.append(drops)
    stages = _stage_table(obs, elapsed_for(obs.tracer, root_span))
    if stages is not None:
        sections.append(stages)
    profiled = _profile_table(obs)
    if profiled is not None:
        sections.append(profiled)
    rendered = "\n\n".join(table_to_markdown(table) for table in sections)
    return "**%s**\n\n%s" % (title, rendered)


def _throughput_table(obs, items_label, items_count, root_span):
    elapsed = elapsed_for(obs.tracer, root_span)
    rate = items_count / elapsed if elapsed else 0.0
    table = Table(["metric", "value"], title="Throughput")
    table.add_row("%s processed" % items_label, items_count)
    table.add_row("elapsed (clock s)", "%.3f" % elapsed)
    table.add_row("%s/sec" % items_label, "%.1f" % rate)
    return table

def _exec_table(obs):
    """Execution-layer summary, rendered only for sharded runs."""
    registry = obs.registry
    if registry.get(EXEC_WORKERS_METRIC) is None:
        return None
    table = Table(["metric", "value"], title="Execution")
    backends = registry.label_values(EXEC_BACKEND_METRIC)
    if backends:
        table.add_row("backend", "/".join(labels[0] for labels in backends))
    table.add_row("workers", int(registry.value(EXEC_WORKERS_METRIC)))
    table.add_row("chunk size", int(registry.value(EXEC_CHUNK_SIZE_METRIC)))
    for (status,), count in sorted(
        registry.label_values(EXEC_TASKS_METRIC).items()
    ):
        table.add_row("tasks %s" % status, int(count))
    if registry.get(EXEC_CACHE_HITS_METRIC) is not None:
        table.add_row("cache hits",
                      int(registry.value(EXEC_CACHE_HITS_METRIC)))
        table.add_row("cache misses",
                      int(registry.value(EXEC_CACHE_MISSES_METRIC)))
    if registry.get(EXEC_CLASS_CACHE_HITS_METRIC) is not None:
        hits = registry.value(EXEC_CLASS_CACHE_HITS_METRIC)
        misses = registry.value(EXEC_CLASS_CACHE_MISSES_METRIC)
        table.add_row("class-cache hits", int(hits))
        table.add_row("class-cache misses", int(misses))
        if hits + misses:
            table.add_row("class-cache hit rate",
                          "%.1f%%" % (100.0 * hits / (hits + misses)))
        table.add_row("class bytes deduplicated",
                      int(registry.value(EXEC_CLASS_BYTES_DEDUPED_METRIC)))
        table.add_row("class time saved (clock s)", "%.3f"
                      % registry.value(EXEC_CLASS_TIME_SAVED_METRIC))
    for (tier,), count in sorted(
        registry.label_values(EXEC_CACHE_EVICTIONS_METRIC).items()
    ):
        table.add_row("%s-cache evictions" % tier, int(count))
    table.add_row("queue depth peak",
                  int(registry.value(EXEC_QUEUE_DEPTH_METRIC)))
    if registry.get(EXEC_STEALS_METRIC) is not None:
        table.add_row("work steals", int(registry.value(EXEC_STEALS_METRIC)))
    if registry.get(EXEC_CHUNKS_REPAIRED_METRIC) is not None:
        table.add_row("chunks repaired",
                      int(registry.value(EXEC_CHUNKS_REPAIRED_METRIC)))
    if registry.get(EXEC_TASKS_QUARANTINED_METRIC) is not None:
        table.add_row(
            "tasks quarantined",
            int(registry.value(EXEC_TASKS_QUARANTINED_METRIC)),
        )
    busy = sum(registry.label_values(EXEC_WORKER_BUSY_METRIC).values())
    critical = registry.value(EXEC_CRITICAL_PATH_METRIC)
    table.add_row("worker busy (clock s)", "%.3f" % busy)
    table.add_row("critical path (clock s)", "%.3f" % critical)
    if critical:
        table.add_row("parallel speedup", "%.2fx" % (busy / critical))
    return table


def _dynamic_table(obs):
    """Dynamic-pipeline summary, rendered only for crawl runs."""
    registry = obs.registry
    visits = registry.label_values(CRAWL_VISITS_METRIC)
    if not visits:
        return None
    table = Table(["metric", "value"], title="Dynamic execution")
    table.add_row("visits", int(sum(visits.values())))
    table.add_row("apps crawled", len(visits))
    events = registry.label_values(CRAWL_NETLOG_EVENTS_METRIC)
    if events:
        table.add_row("netlog events", int(sum(events.values())))
    if registry.get(SCRIPT_CACHE_HITS_METRIC) is not None:
        hits = registry.value(SCRIPT_CACHE_HITS_METRIC)
        misses = registry.value(SCRIPT_CACHE_MISSES_METRIC)
        table.add_row("script-cache hits", int(hits))
        table.add_row("script-cache misses", int(misses))
        if hits + misses:
            table.add_row("script-cache hit rate",
                          "%.1f%%" % (100.0 * hits / (hits + misses)))
        table.add_row(
            "script parse time saved (clock s)",
            "%.3f" % registry.value(SCRIPT_CACHE_TIME_SAVED_METRIC),
        )
    return table


def _impact_table(obs):
    """Injection-impact summary, rendered only for impact census runs."""
    registry = obs.registry
    apps = registry.label_values(IMPACT_APPS_METRIC)
    if not apps:
        return None
    table = Table(["metric", "value"], title="Injection impact")
    table.add_row("apps probed", int(sum(apps.values())))
    for (kind,), count in sorted(apps.items()):
        table.add_row("apps %s" % kind, int(count))
    if registry.get(IMPACT_BRIDGES_METRIC) is not None:
        table.add_row("bridges probed",
                      int(registry.value(IMPACT_BRIDGES_METRIC)))
    for (severity,), count in sorted(
        registry.label_values(IMPACT_FINDINGS_METRIC).items()
    ):
        table.add_row("findings %s" % severity, int(count))
    if registry.get(IMPACT_FLOWS_METRIC) is not None:
        table.add_row("taint flows observed",
                      int(registry.value(IMPACT_FLOWS_METRIC)))
    if registry.get(IMPACT_CLEARTEXT_METRIC) is not None:
        table.add_row("cleartext visits",
                      int(registry.value(IMPACT_CLEARTEXT_METRIC)))
    return table


def _endpoints_table(obs):
    """Static-endpoint summary, rendered only for endpoint census runs."""
    registry = obs.registry
    if registry.get(ENDPOINTS_APPS_METRIC) is None:
        return None
    table = Table(["metric", "value"], title="Static endpoints")
    table.add_row("apps reconstructed",
                  int(registry.value(ENDPOINTS_APPS_METRIC)))
    for (kind,), count in sorted(
        registry.label_values(ENDPOINTS_FOUND_METRIC).items()
    ):
        table.add_row("endpoints %s" % kind, int(count))
    if registry.get(ENDPOINTS_CLEARTEXT_METRIC) is not None:
        table.add_row("cleartext endpoints",
                      int(registry.value(ENDPOINTS_CLEARTEXT_METRIC)))
    if registry.get(ENDPOINTS_CREDENTIALS_METRIC) is not None:
        table.add_row("credentialed endpoints",
                      int(registry.value(ENDPOINTS_CREDENTIALS_METRIC)))
    hits = registry.get(ENDPOINTS_SUMMARY_CACHE_HITS_METRIC)
    misses = registry.get(ENDPOINTS_SUMMARY_CACHE_MISSES_METRIC)
    if hits is not None or misses is not None:
        hit_count = int(registry.value(ENDPOINTS_SUMMARY_CACHE_HITS_METRIC)
                        ) if hits is not None else 0
        miss_count = int(registry.value(
            ENDPOINTS_SUMMARY_CACHE_MISSES_METRIC)) if misses is not None else 0
        table.add_row("summary cache hits", hit_count)
        table.add_row("summary cache misses", miss_count)
        total = hit_count + miss_count
        if total:
            table.add_row("summary hit rate",
                          "%.1f%%" % (100.0 * hit_count / total))
    if registry.get(ENDPOINTS_SUMMARY_TIME_SAVED_METRIC) is not None:
        table.add_row(
            "summary time saved (clock s)",
            "%.3f" % registry.value(ENDPOINTS_SUMMARY_TIME_SAVED_METRIC),
        )
    if registry.get(ENDPOINTS_SUMMARY_BYTES_DEDUPED_METRIC) is not None:
        table.add_row(
            "summary bytes deduplicated",
            int(registry.value(ENDPOINTS_SUMMARY_BYTES_DEDUPED_METRIC)),
        )
    return table


def _longitudinal_table(obs):
    """Incremental-engine summary, rendered only for longitudinal runs."""
    registry = obs.registry
    modes = registry.label_values(LONGITUDINAL_APPS_METRIC)
    if not modes:
        return None
    table = Table(["metric", "value"], title="Longitudinal")
    for (mode,), count in sorted(
        registry.label_values(LONGITUDINAL_RUNS_METRIC).items()
    ):
        table.add_row("runs %s" % mode, int(count))
    total = sum(modes.values())
    for (mode,), count in sorted(modes.items()):
        table.add_row("apps %s" % mode, int(count))
    fresh = modes.get(("fresh",), 0)
    if total:
        table.add_row("work avoided",
                      "%.1f%%" % (100.0 * (total - fresh) / total))
    for (change,), count in sorted(
        registry.label_values(LONGITUDINAL_DELTA_METRIC).items()
    ):
        table.add_row("index delta %s" % change, int(count))
    if registry.get(LONGITUDINAL_CHECKPOINT_FLUSHES_METRIC) is not None:
        table.add_row(
            "checkpoint flushes",
            int(registry.value(LONGITUDINAL_CHECKPOINT_FLUSHES_METRIC)),
        )
    return table


def _drop_table(obs, drop_metric):
    drops = obs.registry.label_values(drop_metric)
    if not drops:
        return None
    table = Table(["drop reason", "count"], title="Drop taxonomy")
    ordered = sorted(drops.items(), key=lambda item: (-item[1], item[0]))
    for labels, count in ordered:
        table.add_row(labels[0], int(count))
    table.add_row("total", int(sum(drops.values())))
    return table


def _profile_table(obs):
    """Critical-path profile of the run's span forest.

    Unlike the stage-share table (built from counters, where nested
    spans double-count their children), self times here exclude child
    spans, so the column is a true cost breakdown; the critical-path
    share says how much of the run's longest dependency chain each stage
    owns — the stages worth optimizing first.
    """
    # Imported lazily: repro.obs.perf imports this module's metric names.
    from repro.obs import perf

    roots = list(obs.tracer.roots)
    if not roots:
        return None
    prof = perf.profile(roots)
    total_self = sum(stage.self_time for stage in prof.stages.values())
    table = Table(
        ["stage", "self clock s", "self %", "critical path %", "calls"],
        title="Profile (self time excludes child spans; critical path "
              "%.3f clock s)" % prof.critical_length,
    )
    for stage in prof.ordered():
        table.add_row(
            stage.name,
            "%.3f" % stage.self_time,
            "%.1f" % (100.0 * stage.self_time / total_self
                      if total_self else 0.0),
            "%.1f" % (100.0 * prof.path_share(stage.name)),
            stage.calls,
        )
    return table


def _stage_table(obs, elapsed):
    seconds = obs.registry.label_values(STAGE_SECONDS_METRIC)
    if not seconds:
        return None
    calls = obs.registry.label_values(STAGE_CALLS_METRIC)
    # Shares are relative to the root span's elapsed time; nested spans
    # overlap their parents, so columns intentionally do not sum to 100.
    total = elapsed or sum(seconds.values()) or 1.0
    table = Table(["stage", "clock s", "share %", "calls"],
                  title="Stage time shares (of root elapsed; spans nest)")
    ordered = sorted(seconds.items(), key=lambda item: (-item[1], item[0]))
    for labels, value in ordered:
        table.add_row(
            labels[0],
            "%.3f" % value,
            "%.1f" % (100.0 * value / total),
            int(calls.get(labels, 0)),
        )
    return table
