"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry follows the Prometheus data model at library scale: a metric
has a name, a help string and optional label names; ``labels(...)``
returns a child time series for one label-value combination. Values are
plain Python numbers — no wall-clock dependence anywhere — so two runs of
a deterministic study produce bit-identical registries.

Two exporters are provided, and both round-trip:

- JSON via :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict`
  (and the ``to_json`` convenience),
- Prometheus text exposition via :meth:`MetricsRegistry.render_prometheus`,
  parseable back into samples with :func:`parse_prometheus_text`.
"""

import json
import re


class TickClock:
    """Deterministic clock: every call advances time by a fixed step.

    The observability layer never reads the wall clock unless a real clock
    (e.g. ``time.perf_counter``) is explicitly injected; by default spans
    and timers consume ticks from an instance of this class, so durations
    are a deterministic function of the number of instrumented operations.
    """

    def __init__(self, start=0.0, step=0.001):
        self._now = float(start)
        self.step = float(step)

    def __call__(self):
        now = self._now
        self._now += self.step
        return now

    def __repr__(self):
        return "TickClock(now=%.3f, step=%.3f)" % (self._now, self.step)


#: Default histogram bucket upper bounds (seconds-flavored, Prometheus-like).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Raised for inconsistent metric declarations or label usage."""


class _Metric:
    """Shared parent/child machinery for all metric kinds."""

    kind = None

    def __init__(self, name, help="", labelnames=()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children = {}
        self._parent = None

    # -- labelled children ---------------------------------------------------

    def labels(self, *values, **kv):
        """Return the child series for one label-value combination."""
        if not self.labelnames:
            raise MetricError("%s has no labels" % self.name)
        if values and kv:
            raise MetricError("pass label values positionally or by name")
        if kv:
            try:
                values = tuple(str(kv.pop(name)) for name in self.labelnames)
            except KeyError as exc:
                raise MetricError(
                    "missing label %s for %s" % (exc, self.name)
                )
            if kv:
                raise MetricError(
                    "unknown labels %s for %s" % (sorted(kv), self.name)
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricError(
                "%s expects labels %s, got %r"
                % (self.name, self.labelnames, values)
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            child._parent = self
            self._children[values] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def _label_dict(self, values):
        return dict(zip(self.labelnames, values))

    def samples(self):
        """Yield ``(labels_dict, sample)`` pairs for every series."""
        if self.labelnames:
            for values in sorted(self._children):
                yield self._label_dict(values), self._children[values]
        else:
            yield {}, self

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)


class Counter(_Metric):
    """A monotonically increasing value (counts, accumulated seconds)."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self):
        return Counter(self.name, self.help)

    def inc(self, amount=1):
        if self.labelnames:
            raise MetricError("use %s.labels(...).inc()" % self.name)
        if amount < 0:
            raise MetricError("counters only go up (%s)" % self.name)
        self._value += amount

    @property
    def value(self):
        return self._value


class Gauge(_Metric):
    """A value that can go up and down (sizes, in-flight work)."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self):
        return Gauge(self.name, self.help)

    def set(self, value):
        if self.labelnames:
            raise MetricError("use %s.labels(...).set()" % self.name)
        self._value = float(value)

    def inc(self, amount=1):
        if self.labelnames:
            raise MetricError("use %s.labels(...).inc()" % self.name)
        self._value += amount

    def dec(self, amount=1):
        self.inc(-amount)

    @property
    def value(self):
        return self._value


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative bucket counts.

    Buckets are declared once at creation (upper bounds, sorted ascending);
    an implicit ``+Inf`` bucket equals the total observation count.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise MetricError("histogram %s needs at least one bucket" % name)
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0

    def _make_child(self):
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value):
        if self.labelnames:
            raise MetricError("use %s.labels(...).observe()" % self.name)
        value = float(value)
        self._count += 1
        self._sum += value
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self._bucket_counts[position] += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def bucket_counts(self):
        """Cumulative ``{upper_bound: count}`` including ``+Inf``."""
        counts = dict(zip(self.buckets, self._bucket_counts))
        counts[float("inf")] = self._count
        return counts


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self):
        self._metrics = {}

    # -- registration --------------------------------------------------------

    def register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None and existing is not metric:
            raise MetricError("metric %r already registered" % metric.name)
        self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise MetricError(
                    "%r is a %s, not a %s" % (name, metric.kind, cls.kind)
                )
            if tuple(labelnames) != metric.labelnames:
                raise MetricError(
                    "%r re-declared with labels %r (was %r)"
                    % (name, tuple(labelnames), metric.labelnames)
                )
            return metric
        return self.register(cls(name, help, labelnames, **kwargs))

    def counter(self, name, help="", labelnames=()):
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name):
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def __iter__(self):
        for name in self.names():
            yield self._metrics[name]

    def __len__(self):
        return len(self._metrics)

    def reset(self):
        self._metrics = {}

    # -- value access --------------------------------------------------------

    def value(self, name, **labels):
        """Convenience: current value of a counter/gauge series (0 if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if labels:
            key = tuple(str(labels[n]) for n in metric.labelnames)
            child = metric._children.get(key)
            return child.value if child is not None else 0
        return metric.value

    def label_values(self, name):
        """``{labels_tuple: value}`` for every series of a labelled metric."""
        metric = self._metrics.get(name)
        if metric is None:
            return {}
        return {
            values: child.value
            for values, child in sorted(metric._children.items())
        }

    # -- JSON exporter -------------------------------------------------------

    def as_dict(self):
        """A JSON-able snapshot of every metric and series."""
        out = []
        for metric in self:
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": [],
            }
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)
            for labels, sample in metric.samples():
                if metric.kind == "histogram":
                    entry["samples"].append({
                        "labels": labels,
                        "count": sample._count,
                        "sum": sample._sum,
                        "bucket_counts": list(sample._bucket_counts),
                    })
                else:
                    entry["samples"].append({
                        "labels": labels,
                        "value": sample._value,
                    })
            out.append(entry)
        return {"metrics": out}

    def to_json(self, indent=None):
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a registry from :meth:`as_dict` output (JSON round-trip)."""
        registry = cls()
        for entry in data["metrics"]:
            kind = _KINDS[entry["kind"]]
            kwargs = {}
            if entry["kind"] == "histogram":
                kwargs["buckets"] = entry["buckets"]
            metric = registry.register(
                kind(entry["name"], entry.get("help", ""),
                     entry.get("labelnames", ()), **kwargs)
            )
            for sample in entry["samples"]:
                labels = sample.get("labels") or {}
                target = metric.labels(**labels) if labels else metric
                if entry["kind"] == "histogram":
                    target._count = sample["count"]
                    target._sum = sample["sum"]
                    target._bucket_counts = list(sample["bucket_counts"])
                else:
                    target._value = sample["value"]
        return registry

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    # -- Prometheus text exporter --------------------------------------------

    def render_prometheus(self):
        """Render the Prometheus text exposition format."""
        lines = []
        for metric in self:
            if metric.help:
                lines.append("# HELP %s %s"
                             % (metric.name, _escape_help(metric.help)))
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
            for labels, sample in metric.samples():
                if metric.kind == "histogram":
                    for bound, count in sample.bucket_counts().items():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_bound(bound)
                        lines.append(_sample_line(
                            metric.name + "_bucket", bucket_labels, count
                        ))
                    lines.append(_sample_line(
                        metric.name + "_sum", labels, sample._sum))
                    lines.append(_sample_line(
                        metric.name + "_count", labels, sample._count))
                else:
                    lines.append(_sample_line(
                        metric.name, labels, sample._value))
        return "\n".join(lines) + "\n"

    def flat_samples(self):
        """``{(name, frozenset(labels)): value}`` — the exposition's content.

        Histograms expand to their ``_bucket``/``_sum``/``_count`` series,
        exactly mirroring :meth:`render_prometheus`, so the Prometheus
        round-trip can be asserted with :func:`parse_prometheus_text`.
        """
        flat = {}
        for metric in self:
            for labels, sample in metric.samples():
                if metric.kind == "histogram":
                    for bound, count in sample.bucket_counts().items():
                        key = dict(labels)
                        key["le"] = _format_bound(bound)
                        flat[(metric.name + "_bucket",
                              frozenset(key.items()))] = float(count)
                    flat[(metric.name + "_sum",
                          frozenset(labels.items()))] = float(sample._sum)
                    flat[(metric.name + "_count",
                          frozenset(labels.items()))] = float(sample._count)
                else:
                    flat[(metric.name,
                          frozenset(labels.items()))] = float(sample._value)
        return flat


def _sample_line(name, labels, value):
    if labels:
        body = ",".join(
            '%s="%s"' % (key, _escape_label(str(labels[key])))
            for key in sorted(labels)
        )
        return "%s{%s} %s" % (name, body, _format_value(value))
    return "%s %s" % (name, _format_value(value))


def _format_value(value):
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _format_bound(bound):
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def _escape_label(value):
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value):
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def parse_prometheus_text(text):
    """Parse exposition text back into ``{(name, frozenset(labels)): value}``.

    Understands the subset emitted by :meth:`MetricsRegistry.render_prometheus`
    — enough for the exporter round-trip guarantee.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_body, value_part = rest.rsplit("} ", 1)
            labels = {}
            for pair in _split_label_pairs(label_body):
                key, raw = pair.split("=", 1)
                labels[key] = _unescape_label(raw[1:-1])
            key = frozenset(labels.items())
        else:
            name, value_part = line.rsplit(" ", 1)
            key = frozenset()
        samples[(name, key)] = float(value_part)
    return samples


def _split_label_pairs(body):
    pairs = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


def _unescape_label(value):
    # A single left-to-right scan: sequential str.replace passes corrupt
    # values where one escape's output forms another's input (e.g. the
    # two-character value '\' 'n' renders as '\\n', which a naive
    # replace("\\n", "\n") turns back into a real newline).
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


#: Prometheus text-format grammar pieces (prometheus.io/docs/instrumenting/
#: exposition_formats). Metric and label names; a sample value is any float
#: token Go's strconv accepts — validated with float() below.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_QUOTED_VALUE_RE = re.compile(r'^(?:[^"\\]|\\n|\\"|\\\\)*$')


def validate_prometheus_text(text):
    """Check exposition text against the Prometheus text-format grammar.

    Returns a list of human-readable problems (empty means the text
    parses cleanly). Beyond line grammar, histogram series are checked
    for internal consistency: a ``+Inf`` bucket equal to ``_count``,
    cumulative (non-decreasing) bucket counts, and ``_sum``/``_count``
    present for every label combination that has buckets.
    """
    problems = []
    types = {}
    histograms = {}

    def base_name(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                return name[:-len(suffix)], suffix
        return name, ""

    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                problems.append("line %d: malformed %s line: %r"
                                % (number, parts[1], line))
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _KINDS:
                    problems.append("line %d: unknown TYPE %r"
                                    % (number, line))
                else:
                    types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append("line %d: unparseable sample: %r"
                            % (number, line))
            continue
        name = match.group("name")
        labels = {}
        body = match.group("labels")
        if body:
            for pair in _split_label_pairs(body):
                if "=" not in pair:
                    problems.append("line %d: malformed label pair %r"
                                    % (number, pair))
                    continue
                key, raw = pair.split("=", 1)
                if not _LABEL_NAME_RE.match(key):
                    problems.append("line %d: bad label name %r"
                                    % (number, key))
                if (len(raw) < 2 or raw[0] != '"' or raw[-1] != '"'
                        or not _QUOTED_VALUE_RE.match(raw[1:-1])):
                    problems.append(
                        "line %d: label %s value not a well-escaped "
                        "quoted string: %r" % (number, key, raw)
                    )
                    continue
                labels[key] = _unescape_label(raw[1:-1])
        value_text = match.group("value")
        if value_text == "+Inf":
            value = float("inf")
        else:
            try:
                value = float(value_text)
            except ValueError:
                problems.append("line %d: bad sample value %r"
                                % (number, value_text))
                continue
        root, suffix = base_name(name)
        if types.get(root) == "histogram":
            series_key = frozenset(
                item for item in labels.items() if item[0] != "le"
            )
            series = histograms.setdefault((root, series_key), {
                "buckets": [], "sum": None, "count": None,
            })
            if suffix == "_bucket":
                bound_text = labels.get("le")
                bound = (float("inf") if bound_text == "+Inf"
                         else float(bound_text))
                series["buckets"].append((bound, value))
            elif suffix == "_sum":
                series["sum"] = value
            elif suffix == "_count":
                series["count"] = value
            else:
                problems.append(
                    "line %d: histogram %s sampled without a "
                    "_bucket/_sum/_count suffix" % (number, root)
                )

    for (root, series_key), series in sorted(
        histograms.items(), key=lambda item: (item[0][0], sorted(item[0][1]))
    ):
        where = "%s{%s}" % (root, ",".join(
            "%s=%s" % pair for pair in sorted(series_key)
        ))
        if series["sum"] is None or series["count"] is None:
            problems.append("%s: missing _sum or _count series" % where)
        bounds = sorted(series["buckets"])
        if not bounds or bounds[-1][0] != float("inf"):
            problems.append("%s: no +Inf bucket emitted" % where)
            continue
        counts = [count for _, count in bounds]
        if any(a > b for a, b in zip(counts, counts[1:])):
            problems.append("%s: bucket counts are not cumulative" % where)
        if series["count"] is not None and counts[-1] != series["count"]:
            problems.append(
                "%s: +Inf bucket (%g) disagrees with _count (%g)"
                % (where, counts[-1], series["count"])
            )
    return problems


#: The process-global default registry (instrumentation falls back to it).
REGISTRY = MetricsRegistry()


def default_registry():
    return REGISTRY
