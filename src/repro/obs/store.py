"""Persistent telemetry store: run history in one SQLite file.

Every finished study run — static, dynamic, longitudinal snapshot, or
benchmark — can persist its observability state (span forest, metrics
registry snapshot, benchmark payloads) into a single SQLite database
named by the ``REPRO_OBS_DB`` environment variable. The store is the
substrate for the analyses in :mod:`repro.obs.perf`: critical-path
profiles and flamegraphs of any historical run, and regression gating of
the latest run against the median of its predecessors.

Design points, mirroring the longitudinal RunStore's conventions:

- **Append-only.** Rows are only ever inserted; a run is immutable once
  recorded. "Latest" queries order by the monotonically increasing
  ``seq`` rowid.
- **Keyed for comparability.** Runs carry ``(kind, corpus fingerprint,
  options token, git describe)``; the regression gate only compares runs
  of the same kind/corpus/options, so a corpus change never reads as a
  latency regression.
- **Concurrent-safe.** WAL journal mode plus a busy timeout lets
  concurrent writers (parallel CI legs, two benchmark processes) append
  without corrupting each other, and readers never block writers. Every
  operation opens a fresh connection, so the store is fork-safe.
- **Corrupt reads as absent, failed writes as warnings.** Telemetry is
  an observer: a truncated or garbage database yields empty listings
  (same contract as a corrupt RunStore checkpoint), and a failed insert
  logs a warning instead of failing the run it was watching.

The module doubles as a CLI::

    python -m repro.obs.store list [--kind static]
    python -m repro.obs.store show static-000003
    python -m repro.obs.store check --kind static
    python -m repro.obs.store flamegraph static-000003 --out run.folded

``check`` exits non-zero when the latest run breaches the regression
thresholds against its baseline window — CI wires it in as a soft gate.
"""

import argparse
import json
import os
import sqlite3
import subprocess
import sys

from repro.obs import perf
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span

#: Environment variable naming the telemetry database file.
OBS_DB_ENV_VAR = "REPRO_OBS_DB"

#: Bumped on any schema change; old files are never migrated in place
#: (append-only history is cheap to regenerate, unlike run outcomes).
SCHEMA_VERSION = 1

_BUSY_TIMEOUT_MS = 5000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_info (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT UNIQUE,
    kind TEXT NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    corpus TEXT NOT NULL DEFAULT '',
    options TEXT NOT NULL DEFAULT '',
    git TEXT NOT NULL DEFAULT '',
    items INTEGER NOT NULL DEFAULT 0,
    elapsed REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS traces (
    run_seq INTEGER NOT NULL,
    position INTEGER NOT NULL,
    tree TEXT NOT NULL,
    PRIMARY KEY (run_seq, position)
);
CREATE TABLE IF NOT EXISTS registries (
    run_seq INTEGER PRIMARY KEY,
    snapshot TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_payloads (
    run_seq INTEGER NOT NULL,
    name TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_seq, name)
);
CREATE INDEX IF NOT EXISTS runs_by_key
    ON runs (kind, corpus, options, seq);
"""


def env_db_path():
    """The validated ``REPRO_OBS_DB`` value, or None when unset/blank.

    The variable must name a *file* path whose parent directory exists
    or is creatable; pointing it at an existing directory is the most
    common misconfiguration and gets a specific message.
    """
    raw = os.environ.get(OBS_DB_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    path = raw.strip()
    if os.path.isdir(path):
        raise ValueError(
            "%s=%r is a directory; it must name a database file, e.g. "
            "%s=%s" % (OBS_DB_ENV_VAR, raw, OBS_DB_ENV_VAR,
                       os.path.join(path, "telemetry.db"))
        )
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError as exc:
            raise ValueError(
                "%s=%r names a file in an uncreatable directory (%s)"
                % (OBS_DB_ENV_VAR, raw, exc)
            )
    return path


def git_describe(cwd=None):
    """``git describe --always --dirty`` of the working tree, or ''."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd, capture_output=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if out.returncode != 0:
        return ""
    return out.stdout.decode("utf-8", "replace").strip()


class TelemetryStore:
    """Append-only SQLite sink for finished runs' observability state."""

    def __init__(self, path):
        if not path or not str(path).strip():
            raise ValueError(
                "TelemetryStore needs a database file path; set the %s "
                "environment variable or pass one explicitly"
                % OBS_DB_ENV_VAR
            )
        self.path = str(path)
        self.log = get_logger("obs.store")
        self._ensure_schema()

    @classmethod
    def from_env(cls):
        """A store for ``REPRO_OBS_DB``, or None when the var is unset."""
        path = env_db_path()
        if path is None:
            return None
        return cls(path)

    # -- connections ---------------------------------------------------------

    def _connect(self):
        # A fresh connection per operation keeps the store safe across
        # fork-based worker pools (sqlite connections must not cross a
        # fork) and lets concurrent processes interleave via WAL.
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_MS / 1000.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=%d" % _BUSY_TIMEOUT_MS)
        return conn

    def _ensure_schema(self):
        conn = self._connect()
        try:
            with conn:
                conn.executescript(_SCHEMA)
                row = conn.execute(
                    "SELECT version FROM schema_info"
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO schema_info (version) VALUES (?)",
                        (SCHEMA_VERSION,),
                    )
                elif row[0] != SCHEMA_VERSION:
                    raise ValueError(
                        "telemetry database %s has schema version %d, "
                        "this build writes version %d; point %s at a "
                        "fresh file" % (self.path, row[0], SCHEMA_VERSION,
                                        OBS_DB_ENV_VAR)
                    )
        finally:
            conn.close()

    # -- writes --------------------------------------------------------------

    def record_run(self, obs, kind, label="", corpus="", options="",
                   git=None, items=0, root_span="run"):
        """Persist one finished run's bundle; returns run_id or None.

        Failure to write is logged and swallowed — the telemetry store
        observes runs, it must never fail one.
        """
        if git is None:
            git = git_describe()
        trees = [json.dumps(root.to_dict(), sort_keys=True)
                 for root in obs.tracer.roots]
        snapshot = json.dumps(obs.registry.as_dict(), sort_keys=True)
        elapsed = sum(
            span.duration for span in obs.tracer.iter_spans()
            if span.name == root_span
        )
        try:
            return self._insert_run(kind, label, corpus, options, git,
                                    items, elapsed, trees, snapshot, ())
        except sqlite3.Error as exc:
            self.log.warning("record_failed", kind=kind, error=str(exc))
            return None

    def record_bench(self, name, payload, git=None):
        """Persist one benchmark's JSON payload; returns run_id or None."""
        if git is None:
            git = git_describe()
        try:
            return self._insert_run(
                "bench", name, "", "", git, 0, 0.0, (), None,
                ((name, json.dumps(payload, sort_keys=True)),),
            )
        except sqlite3.Error as exc:
            self.log.warning("record_failed", kind="bench", error=str(exc))
            return None

    def _insert_run(self, kind, label, corpus, options, git, items,
                    elapsed, trees, snapshot, payloads):
        conn = self._connect()
        try:
            with conn:
                # BEGIN IMMEDIATE serializes the id allocation across
                # concurrent writer processes.
                conn.execute("BEGIN IMMEDIATE")
                cursor = conn.execute(
                    "INSERT INTO runs (kind, label, corpus, options, git,"
                    " items, elapsed) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (kind, label, corpus, options, git, items, elapsed),
                )
                seq = cursor.lastrowid
                run_id = "%s-%06d" % (kind, seq)
                conn.execute("UPDATE runs SET run_id = ? WHERE seq = ?",
                             (run_id, seq))
                for position, tree in enumerate(trees):
                    conn.execute(
                        "INSERT INTO traces (run_seq, position, tree)"
                        " VALUES (?, ?, ?)",
                        (seq, position, tree),
                    )
                if snapshot is not None:
                    conn.execute(
                        "INSERT INTO registries (run_seq, snapshot)"
                        " VALUES (?, ?)",
                        (seq, snapshot),
                    )
                for name, payload in payloads:
                    conn.execute(
                        "INSERT INTO bench_payloads (run_seq, name,"
                        " payload) VALUES (?, ?, ?)",
                        (seq, name, payload),
                    )
        finally:
            conn.close()
        self.log.info("recorded", run=run_id, kind=kind, items=items)
        return run_id

    # -- reads (corrupt database => empty results) ---------------------------

    def _query(self, sql, params=()):
        try:
            conn = self._connect()
        except sqlite3.Error:
            return []
        try:
            return conn.execute(sql, params).fetchall()
        except sqlite3.Error:
            return []
        finally:
            conn.close()

    def list_runs(self, kind=None):
        """Run metadata dicts, oldest first; optionally one kind only."""
        sql = ("SELECT run_id, kind, label, corpus, options, git, items,"
               " elapsed FROM runs")
        params = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        sql += " ORDER BY seq"
        return [
            {"run_id": row[0], "kind": row[1], "label": row[2],
             "corpus": row[3], "options": row[4], "git": row[5],
             "items": row[6], "elapsed": row[7]}
            for row in self._query(sql, params)
        ]

    def get_run(self, run_id):
        """One run's metadata dict, or None."""
        rows = self._query(
            "SELECT run_id, kind, label, corpus, options, git, items,"
            " elapsed FROM runs WHERE run_id = ?", (run_id,),
        )
        if not rows:
            return None
        row = rows[0]
        return {"run_id": row[0], "kind": row[1], "label": row[2],
                "corpus": row[3], "options": row[4], "git": row[5],
                "items": row[6], "elapsed": row[7]}

    def load_spans(self, run_id):
        """The run's span forest, rebuilt as live :class:`Span` trees."""
        rows = self._query(
            "SELECT tree FROM traces WHERE run_seq ="
            " (SELECT seq FROM runs WHERE run_id = ?) ORDER BY position",
            (run_id,),
        )
        roots = []
        for (tree,) in rows:
            try:
                roots.append(Span.from_dict(json.loads(tree)))
            except (ValueError, KeyError, TypeError):
                continue
        return roots

    def load_registry(self, run_id):
        """The run's metrics registry snapshot, or None."""
        rows = self._query(
            "SELECT snapshot FROM registries WHERE run_seq ="
            " (SELECT seq FROM runs WHERE run_id = ?)", (run_id,),
        )
        if not rows:
            return None
        try:
            return MetricsRegistry.from_dict(json.loads(rows[0][0]))
        except (ValueError, KeyError, TypeError):
            return None

    def load_bench(self, run_id):
        """``{name: payload}`` for a bench run's recorded payloads."""
        rows = self._query(
            "SELECT name, payload FROM bench_payloads WHERE run_seq ="
            " (SELECT seq FROM runs WHERE run_id = ?)", (run_id,),
        )
        out = {}
        for name, payload in rows:
            try:
                out[name] = json.loads(payload)
            except ValueError:
                continue
        return out

    def last_runs(self, kind, corpus=None, options=None, limit=10):
        """run_ids of the newest matching runs, newest first."""
        sql = "SELECT run_id FROM runs WHERE kind = ?"
        params = [kind]
        if corpus is not None:
            sql += " AND corpus = ?"
            params.append(corpus)
        if options is not None:
            sql += " AND options = ?"
            params.append(options)
        sql += " ORDER BY seq DESC LIMIT ?"
        params.append(int(limit))
        return [row[0] for row in self._query(sql, tuple(params))]

    def __repr__(self):
        return "TelemetryStore(%s)" % self.path


# -- regression gate ----------------------------------------------------------


def check_latest(store, kind, window=None, thresholds=None):
    """Gate the newest ``kind`` run against its predecessors' median.

    The baseline window only spans runs sharing the latest run's
    ``(corpus, options)`` key. Returns ``(latest_meta, findings,
    breaches)``; with no latest run or no baseline, findings are empty
    (nothing to gate is a pass).
    """
    if window is None:
        window = perf.Thresholds.baseline_window()
    latest_ids = store.last_runs(kind, limit=1)
    if not latest_ids:
        return None, [], []
    latest = store.get_run(latest_ids[0])
    candidates = store.last_runs(kind, corpus=latest["corpus"],
                                 options=latest["options"],
                                 limit=window + 1)
    baseline_ids = [rid for rid in candidates if rid != latest["run_id"]]
    latest_registry = store.load_registry(latest["run_id"])
    if latest_registry is None:
        return latest, [], []
    baseline_stats = []
    for run_id in baseline_ids:
        registry = store.load_registry(run_id)
        if registry is not None:
            baseline_stats.append(perf.run_stats(registry))
    findings, breaches = perf.check_window(
        baseline_stats, perf.run_stats(latest_registry), thresholds
    )
    return latest, findings, breaches


# -- CLI ----------------------------------------------------------------------


def _open_store(args):
    if args.db:
        return TelemetryStore(args.db)
    store = TelemetryStore.from_env()
    if store is None:
        raise SystemExit(
            "no telemetry database: set %s or pass --db" % OBS_DB_ENV_VAR
        )
    return store


def _cmd_list(store, args):
    runs = store.list_runs(kind=args.kind)
    if not runs:
        print("no runs recorded")
        return 0
    for run in runs:
        print("%-18s %-12s items=%-7d elapsed=%-10.3f %s %s" % (
            run["run_id"], run["kind"], run["items"], run["elapsed"],
            run["git"] or "-", run["label"],
        ))
    return 0


def _cmd_show(store, args):
    meta = store.get_run(args.run_id)
    if meta is None:
        print("unknown run %r" % args.run_id, file=sys.stderr)
        return 1
    print(json.dumps(meta, indent=2, sort_keys=True))
    roots = store.load_spans(args.run_id)
    if roots:
        prof = perf.profile(roots)
        print("\ncritical path: %.3f clock s" % prof.critical_length)
        for stage in prof.ordered():
            print("  %-24s self=%-8.3f calls=%-5d cp-share=%.1f%%" % (
                stage.name, stage.self_time, stage.calls,
                100.0 * prof.path_share(stage.name),
            ))
    payloads = store.load_bench(args.run_id)
    for name in sorted(payloads):
        print("\nbench payload %s:" % name)
        print(json.dumps(payloads[name], indent=2, sort_keys=True))
    return 0


def _cmd_check(store, args):
    thresholds = perf.Thresholds(
        stage_ratio=args.stage_ratio,
        hit_rate_drop=args.hit_rate_drop,
        drop_rate_increase=args.drop_rate_increase,
    )
    latest, findings, breaches = check_latest(
        store, args.kind, window=args.window, thresholds=thresholds
    )
    if latest is None:
        print("no %r runs recorded; nothing to check" % args.kind)
        return 0
    print("latest run: %s (git %s)" % (latest["run_id"],
                                       latest["git"] or "-"))
    if not findings:
        print("no baseline runs with matching corpus/options; pass")
        return 0
    for finding in findings:
        marker = "REGRESSION" if finding.breach else "ok"
        print("%-10s %-28s %s" % (marker, finding.metric, finding.detail))
    if breaches:
        print("%d regression(s) detected" % len(breaches))
        return 1
    print("within thresholds")
    return 0


def _cmd_flamegraph(store, args):
    run_id = args.run_id
    if run_id is None:
        runs = store.last_runs(args.kind) if args.kind else None
        if not runs:
            ids = [r["run_id"] for r in store.list_runs()]
            runs = ids[::-1]
        if not runs:
            print("no runs recorded", file=sys.stderr)
            return 1
        run_id = runs[0]
    roots = store.load_spans(run_id)
    if not roots:
        print("run %r has no recorded spans" % run_id, file=sys.stderr)
        return 1
    folded = perf.flamegraph(roots)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(folded)
        print("wrote %s (%d stacks)" % (args.out, len(folded.splitlines())))
    else:
        sys.stdout.write(folded)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.store",
        description="Inspect and gate the persistent telemetry store.",
    )
    parser.add_argument("--db", help="database file (default: $%s)"
                        % OBS_DB_ENV_VAR)
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("list", help="list recorded runs")
    cmd.add_argument("--kind", help="only runs of this kind")

    cmd = commands.add_parser("show", help="dump one run's profile")
    cmd.add_argument("run_id")

    cmd = commands.add_parser(
        "check", help="gate the latest run against its baseline window"
    )
    cmd.add_argument("--kind", default="static")
    cmd.add_argument("--window", type=int, default=None,
                     help="baseline runs to median over (default $%s or 5)"
                     % perf.BASELINE_WINDOW_ENV_VAR)
    cmd.add_argument("--stage-ratio", type=float, default=None)
    cmd.add_argument("--hit-rate-drop", type=float, default=None)
    cmd.add_argument("--drop-rate-increase", type=float, default=None)

    cmd = commands.add_parser(
        "flamegraph", help="emit collapsed-stack text for one run"
    )
    cmd.add_argument("run_id", nargs="?", default=None,
                     help="run to fold (default: newest run)")
    cmd.add_argument("--kind", help="with no run_id: newest of this kind")
    cmd.add_argument("--out", help="write to a file instead of stdout")

    args = parser.parse_args(argv)
    store = _open_store(args)
    handler = {
        "list": _cmd_list,
        "show": _cmd_show,
        "check": _cmd_check,
        "flamegraph": _cmd_flamegraph,
    }[args.command]
    return handler(store, args)


if __name__ == "__main__":
    sys.exit(main())
