"""Live progress streaming for long-running study pipelines.

A :class:`ProgressReporter` is a per-outcome callable wired into the
worker pool's ``on_result`` hook (next to the longitudinal checkpoint
sink), so static, dynamic and longitudinal runs all stream progress
lines without the pipelines knowing anything beyond "call this with each
outcome"::

    [static] 50/200 (25.0%) rate=12.3/s eta=12.2s p50=0.080 p95=0.310

Everything is computed from the outcomes' deterministic *cost* model
(each outcome carries the clock units its shard consumed), never from
wall time — so under a :class:`~repro.obs.metrics.TickClock` the stream
of lines is byte-identical across worker counts and backends, and tests
can assert on it exactly. Per-item p50/p95 come from the costs seen so
far; items costing more than ``straggler_factor`` times the median are
flagged with their identifying attribute (package name, shard label) so
a stuck shard is visible *during* the run, not after it.

Lines go to ``stream`` (default: stderr) only when a stream is given or
the ``REPRO_PROGRESS`` environment variable is truthy; the reporter
always accumulates, so the pipelines can wire it unconditionally.
"""

import os
import sys

#: Truthy values enable default-stream progress output.
PROGRESS_ENV_VAR = "REPRO_PROGRESS"

_FALSY = ("", "0", "false", "no", "off")


def progress_enabled():
    """Whether ``REPRO_PROGRESS`` asks for progress lines."""
    raw = os.environ.get(PROGRESS_ENV_VAR)
    if raw is None:
        return False
    return raw.strip().lower() not in _FALSY


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


class ProgressReporter:
    """Streams rate/ETA/straggler lines as pool results arrive.

    Parameters
    ----------
    label:
        Prefix naming the run (``static``, ``crawl``, a snapshot date).
    total:
        Expected item count; enables percentage and ETA. Settable later
        via :meth:`begin` when the pipeline only learns it after
        selection.
    every:
        Emit a line every N completions (and always on the last item).
    stream:
        Where lines go. None consults ``REPRO_PROGRESS`` and uses
        stderr; pass a StringIO in tests.
    straggler_factor:
        Items costing more than this multiple of the running median are
        reported as stragglers.
    """

    def __init__(self, label="items", total=None, every=10, stream=None,
                 straggler_factor=4.0):
        self.label = label
        self.total = total
        self.every = max(1, int(every))
        if stream is None and progress_enabled():
            stream = sys.stderr
        self.stream = stream
        self.straggler_factor = float(straggler_factor)
        self.done = 0
        self.busy = 0.0
        self.costs = []
        self.stragglers = []
        self.lines = 0

    def begin(self, total):
        """Set (or correct) the expected item count once it is known."""
        self.total = total
        return self

    # -- pool hook -----------------------------------------------------------

    def __call__(self, outcome):
        """Consume one pool outcome (any object; cost/name via getattr)."""
        cost = float(getattr(outcome, "cost", 0.0) or 0.0)
        self.done += 1
        self.busy += cost
        self.costs.append(cost)
        name = self._describe(outcome)
        if self._is_straggler(cost):
            self.stragglers.append((name, cost))
            self._emit(self._straggler_line(name, cost))
        if self.done % self.every == 0 or self.done == self.total:
            self._emit(self.render())

    @staticmethod
    def _describe(outcome):
        for attr in ("package", "site", "name", "sha256"):
            value = getattr(outcome, attr, None)
            if value:
                return str(value)
        return "item-%s" % id(outcome)

    def _is_straggler(self, cost):
        if len(self.costs) < 8:
            return False
        median = _quantile(sorted(self.costs), 0.5)
        return median > 0 and cost > self.straggler_factor * median

    # -- rendering -----------------------------------------------------------

    def render(self):
        """The current progress line (also what ``__call__`` emits)."""
        ordered = sorted(self.costs)
        p50 = _quantile(ordered, 0.5)
        p95 = _quantile(ordered, 0.95)
        rate = self.done / self.busy if self.busy else 0.0
        parts = ["[%s]" % self.label]
        if self.total:
            parts.append("%d/%d (%.1f%%)"
                         % (self.done, self.total,
                            100.0 * self.done / self.total))
        else:
            parts.append("%d done" % self.done)
        parts.append("rate=%.1f/s" % rate)
        if self.total and rate:
            remaining = max(0, self.total - self.done)
            parts.append("eta=%.1fs" % (remaining / rate))
        parts.append("p50=%.3f p95=%.3f" % (p50, p95))
        return " ".join(parts)

    def _straggler_line(self, name, cost):
        return "[%s] straggler %s cost=%.3f (p50=%.3f)" % (
            self.label, name, cost,
            _quantile(sorted(self.costs), 0.5),
        )

    def _emit(self, line):
        self.lines += 1
        if self.stream is not None:
            self.stream.write(line + "\n")

    def summary(self):
        """One-line run summary for the end of a study."""
        return "%s; %d straggler(s)" % (self.render(),
                                        len(self.stragglers))

    def __repr__(self):
        return "ProgressReporter(%s, %d/%s)" % (
            self.label, self.done, self.total if self.total else "?"
        )
