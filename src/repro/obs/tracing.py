"""Lightweight span tracing for the study pipelines.

A :class:`Span` is one timed operation (``decompile``, ``download``, a
site visit); spans nest, carry attributes and point-in-time events, and
record error status when the traced block raises. :class:`Tracer` holds
the active span stack and the finished root spans, exportable as a JSON
trace tree via :meth:`Tracer.to_dict`.

Durations come from an injectable clock; the default is a deterministic
:class:`~repro.obs.metrics.TickClock`, so traces — like metrics — are
reproducible unless a real clock (``time.perf_counter``) is opted into.

The module-level :func:`trace_span` context manager targets the *active*
tracer, bound per-context with :func:`use_tracer` (a contextvar), falling
back to a process-global default. Instrumented library code uses
``trace_span(...)`` and therefore reports to whichever tracer the running
study installed.
"""

import contextlib
import contextvars

from repro.obs.context import current_context
from repro.obs.metrics import TickClock


class Span:
    """One node of a trace tree."""

    __slots__ = ("name", "attributes", "start", "end", "status", "error",
                 "children", "events")

    OK = "ok"
    ERROR = "error"
    #: Export-only status for spans still open at export time.
    OPEN = "open"

    def __init__(self, name, attributes=None, start=0.0):
        self.name = name
        self.attributes = dict(attributes or {})
        self.start = start
        self.end = None
        self.status = Span.OK
        self.error = None
        self.children = []
        self.events = []

    @property
    def duration(self):
        """Elapsed clock units (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key, value):
        self.attributes[key] = value

    def add_event(self, name, time=None, **attributes):
        """Record a point-in-time event inside this span."""
        self.events.append({
            "name": name,
            "time": time,
            "attributes": dict(attributes),
        })

    def record_error(self, exc):
        self.status = Span.ERROR
        self.error = "%s: %s" % (type(exc).__name__, exc)

    def to_dict(self):
        # A still-open span has no defensible duration: exporting 0.0
        # would claim the operation was free. Open spans are marked
        # explicitly (end/duration null, status "open") so consumers can
        # tell "unfinished" from "instant".
        if self.end is None:
            out = {
                "name": self.name,
                "start": self.start,
                "end": None,
                "duration": None,
                "status": Span.OPEN,
            }
        else:
            out = {
                "name": self.name,
                "start": self.start,
                "end": self.end,
                "duration": self.duration,
                "status": self.status,
            }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        if self.events:
            out["events"] = [dict(event) for event in self.events]
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a span tree exported by :meth:`to_dict`.

        The parallel pipeline uses this to replay spans recorded inside
        worker processes into the study's tracer, so a sharded run's
        trace tree looks the same as a serial one.
        """
        span = cls(data["name"], data.get("attributes"),
                   start=data.get("start", 0.0))
        span.end = data.get("end")
        status = data.get("status", cls.OK)
        if status == cls.OPEN:
            # "open" is an export artifact, not a live status: the
            # rebuilt span keeps end=None (so it re-exports as open) and
            # derives its live status from whether an error was recorded.
            status = cls.ERROR if data.get("error") is not None else cls.OK
        span.status = status
        span.error = data.get("error")
        span.events = [
            {
                "name": event["name"],
                "time": event.get("time"),
                "attributes": dict(event.get("attributes", {})),
            }
            for event in data.get("events", ())
        ]
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def iter_spans(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name):
        """First descendant (or self) with the given span name, or None."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def __repr__(self):
        return "Span(%s, %.3f%s, %d children)" % (
            self.name, self.duration,
            "" if self.status == Span.OK else " " + self.status,
            len(self.children),
        )


class Tracer:
    """Records a forest of spans with an injectable clock."""

    def __init__(self, clock=None, on_span_end=None):
        self.clock = clock if clock is not None else TickClock()
        #: Optional callback fired with each finished span (the
        #: :class:`~repro.obs.Obs` bundle uses it to feed stage metrics).
        self.on_span_end = on_span_end
        self.roots = []
        self._stack = []

    @contextlib.contextmanager
    def span(self, name, **attributes):
        """Open a span; nested calls attach children; errors are recorded."""
        merged = current_context()
        merged.update(attributes)
        span = Span(name, merged, start=self.clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.record_error(exc)
            raise
        finally:
            span.end = self.clock()
            self._stack.pop()
            if self.on_span_end is not None:
                self.on_span_end(span)

    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def iter_spans(self):
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name):
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def stage_totals(self):
        """``{span name: total duration}`` across the whole forest."""
        totals = {}
        for span in self.iter_spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self):
        """The JSON trace tree (a forest of root spans).

        Spans still open at export time are marked ``status: "open"``
        with ``end``/``duration`` null — see :meth:`Span.to_dict`.
        """
        return {"spans": [root.to_dict() for root in self.roots]}

    @classmethod
    def from_dict(cls, data, clock=None):
        """Rebuild a tracer from :meth:`to_dict` output (JSON round-trip).

        The rebuilt tracer is read-only in spirit — its roots replay the
        exported forest (including open spans) losslessly, so
        ``Tracer.from_dict(t.to_dict()).to_dict() == t.to_dict()``.
        """
        tracer = cls(clock=clock)
        tracer.roots = [Span.from_dict(span)
                        for span in data.get("spans", ())]
        return tracer

    def reset(self):
        self.roots = []
        self._stack = []

    def __repr__(self):
        return "Tracer(%d roots, depth=%d)" % (len(self.roots),
                                               len(self._stack))


_DEFAULT_TRACER = Tracer()

_ACTIVE_TRACER = contextvars.ContextVar("repro_active_tracer", default=None)


def default_tracer():
    return _DEFAULT_TRACER


def current_tracer():
    """The context-bound tracer, falling back to the process default."""
    tracer = _ACTIVE_TRACER.get()
    return tracer if tracer is not None else _DEFAULT_TRACER


@contextlib.contextmanager
def use_tracer(tracer):
    """Bind ``tracer`` as the active tracer for the enclosed block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def trace_span(name, **attributes):
    """Open a span on the active tracer: ``with trace_span("decompile", ...)``."""
    return current_tracer().span(name, **attributes)
