"""Run/app context propagation for logs and spans.

A contextvar holds an immutable mapping of fields describing "where the
pipeline currently is" — package name, snapshot date, stage — bound with
:func:`bind_context`. Structured log records and new spans merge the
current context automatically, so a deep helper's ``logger.info("retry")``
still says *which* app and stage it happened in.
"""

import contextlib
import contextvars

_CONTEXT = contextvars.ContextVar("repro_log_context", default=None)


def current_context():
    """A copy of the currently bound context fields."""
    bound = _CONTEXT.get()
    return dict(bound) if bound else {}


@contextlib.contextmanager
def bind_context(**fields):
    """Bind fields for the enclosed block (merging with outer bindings)."""
    merged = dict(_CONTEXT.get() or {})
    merged.update(fields)
    token = _CONTEXT.set(merged)
    try:
        yield merged
    finally:
        _CONTEXT.reset(token)
