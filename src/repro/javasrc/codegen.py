"""Java source generation from simplified DEX classes.

This is the decompiler's back end: it turns a :class:`~repro.dex.DexClass`
into Java source text that the :mod:`repro.javasrc.parser` can parse back.
The output mimics JADX conventions — a header comment, an import block with
simple names used in code, ``arg0``-style parameter names and linear method
bodies.

Round-trip property relied on by the pipeline: for every class ``c``,
``parse_java(generate_source(c))`` yields a compilation unit whose (single)
class resolves its ``extends`` to ``c.superclass`` and whose method bodies
contain a call for every invoke instruction in ``c``.
"""

from repro.dex.constants import AccessFlag, Opcode

_PRIMITIVES = frozenset(
    "int long short byte char boolean float double void".split()
)

_STRING_ESCAPES = {
    "\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r",
    "\b": "\\b", "\f": "\\f", "\0": "\\0",
}


def _escape_string(value):
    out = []
    for char in value:
        if char in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[char])
        elif ord(char) > 0xFFFF:
            # Java strings are UTF-16: encode astral chars as surrogate pairs.
            value16 = ord(char) - 0x10000
            high = 0xD800 + (value16 >> 10)
            low = 0xDC00 + (value16 & 0x3FF)
            out.append("\\u%04x\\u%04x" % (high, low))
        elif ord(char) < 0x20 or ord(char) >= 0x7F:
            out.append("\\u%04x" % ord(char))
        else:
            out.append(char)
    return '"%s"' % "".join(out)


class _Imports:
    """Tracks imported types and maps qualified names to usable names."""

    def __init__(self, own_class_name):
        self.own_package = (
            own_class_name.rsplit(".", 1)[0] if "." in own_class_name else ""
        )
        self.own_simple = own_class_name.rsplit(".", 1)[-1]
        self.by_simple = {}

    def use(self, qualified):
        """Register a type use; return the name to write in source."""
        if qualified is None:
            return None
        base = qualified
        suffix = ""
        while base.endswith("[]"):
            base = base[:-2]
            suffix += "[]"
        if base in _PRIMITIVES or "." not in base:
            return base + suffix
        package, simple = base.rsplit(".", 1)
        if package == "java.lang":
            return simple + suffix
        if package == self.own_package:
            return simple + suffix
        if simple == self.own_simple:
            return base + suffix  # avoid shadowing the declared class
        existing = self.by_simple.get(simple)
        if existing is None:
            self.by_simple[simple] = base
            return simple + suffix
        if existing == base:
            return simple + suffix
        return base + suffix  # conflicting simple name: stay qualified

    def import_lines(self):
        return sorted(
            "import %s;" % qualified for qualified in self.by_simple.values()
        )


def _modifier_text(flags):
    parts = []
    if flags & AccessFlag.PUBLIC:
        parts.append("public")
    if flags & AccessFlag.PRIVATE:
        parts.append("private")
    if flags & AccessFlag.PROTECTED:
        parts.append("protected")
    if flags & AccessFlag.STATIC:
        parts.append("static")
    if flags & AccessFlag.FINAL:
        parts.append("final")
    if flags & AccessFlag.ABSTRACT:
        parts.append("abstract")
    return parts


class _BodyWriter:
    """Emits statements for one method from its instruction list."""

    def __init__(self, imports, own_class_name):
        self.imports = imports
        self.own_class_name = own_class_name
        self.lines = []
        self.literal_stack = []
        self.receivers = {}        # class name -> local var name
        self.counter = 0

    def fresh_var(self, type_name):
        self.counter += 1
        simple = type_name.rsplit(".", 1)[-1].replace("[]", "")
        return "%s%d" % (simple[:1].lower() + simple[1:], self.counter)

    def pop_args(self, count):
        args = []
        for _ in range(count):
            if self.literal_stack:
                args.append(self.literal_stack.pop())
            else:
                args.append("null")
        args.reverse()
        return args

    def receiver_for(self, class_name):
        if class_name == self.own_class_name:
            return "this"
        var = self.receivers.get(class_name)
        if var is None:
            type_text = self.imports.use(class_name)
            var = self.fresh_var(class_name)
            self.lines.append("%s %s = null;" % (type_text, var))
            self.receivers[class_name] = var
        return var

    def emit(self, instruction):
        opcode = instruction.opcode
        if opcode == Opcode.CONST_STRING:
            self.literal_stack.append(_escape_string(instruction.operand))
        elif opcode == Opcode.CONST_INT:
            self.literal_stack.append(str(instruction.operand))
        elif opcode == Opcode.NEW_INSTANCE:
            class_name = instruction.operand
            type_text = self.imports.use(class_name)
            var = self.fresh_var(class_name)
            self.lines.append("%s %s = new %s();" % (type_text, var, type_text))
            self.receivers[class_name] = var
        elif opcode in (Opcode.INVOKE_VIRTUAL, Opcode.INVOKE_INTERFACE):
            ref = instruction.operand
            args = self.pop_args(len(ref.parameter_types))
            receiver = self.receiver_for(ref.class_name)
            self.lines.append(
                "%s.%s(%s);" % (receiver, ref.method_name, ", ".join(args))
            )
        elif opcode == Opcode.INVOKE_DIRECT:
            ref = instruction.operand
            if ref.method_name == "<init>":
                # Constructor chaining is folded into the `new` expression
                # emitted for the matching NEW_INSTANCE.
                self.pop_args(len(ref.parameter_types))
            else:
                args = self.pop_args(len(ref.parameter_types))
                self.lines.append(
                    "this.%s(%s);" % (ref.method_name, ", ".join(args))
                )
        elif opcode == Opcode.INVOKE_SUPER:
            ref = instruction.operand
            args = self.pop_args(len(ref.parameter_types))
            if ref.method_name == "<init>":
                self.lines.append("super(%s);" % ", ".join(args))
            else:
                self.lines.append(
                    "super.%s(%s);" % (ref.method_name, ", ".join(args))
                )
        elif opcode == Opcode.INVOKE_STATIC:
            ref = instruction.operand
            args = self.pop_args(len(ref.parameter_types))
            type_text = self.imports.use(ref.class_name)
            self.lines.append(
                "%s.%s(%s);" % (type_text, ref.method_name, ", ".join(args))
            )
        elif opcode == Opcode.IGET:
            _, field_name = instruction.operand
            self.literal_stack.append("this.%s" % field_name)
        elif opcode == Opcode.IPUT:
            _, field_name = instruction.operand
            value = self.pop_args(1)[0]
            self.lines.append("this.%s = %s;" % (field_name, value))
        elif opcode == Opcode.SGET:
            class_name, field_name = instruction.operand
            type_text = self.imports.use(class_name)
            self.literal_stack.append("%s.%s" % (type_text, field_name))
        elif opcode == Opcode.SPUT:
            class_name, field_name = instruction.operand
            type_text = self.imports.use(class_name)
            value = self.pop_args(1)[0]
            self.lines.append("%s.%s = %s;" % (type_text, field_name, value))
        elif opcode == Opcode.RETURN_VOID:
            self.lines.append("return;")
        elif opcode == Opcode.RETURN:
            value = self.pop_args(1)[0]
            self.lines.append("return %s;" % value)
        elif opcode == Opcode.THROW:
            self.lines.append("throw new RuntimeException();")
        elif opcode in (Opcode.IF_EQZ, Opcode.IF_NEZ, Opcode.GOTO,
                        Opcode.MOVE, Opcode.MOVE_RESULT, Opcode.NOP):
            # Control flow is not reconstructed; JADX marks such regions
            # with comments, and so do we.
            self.lines.append("// jadx: branch/move elided (+%s)"
                              % opcode.name.lower())


def generate_source(dex_class):
    """Generate Java source text for one DEX class."""
    imports = _Imports(dex_class.name)
    superclass_text = None
    if dex_class.superclass and dex_class.superclass != "java.lang.Object":
        superclass_text = imports.use(dex_class.superclass)
    interface_texts = [imports.use(i) for i in dex_class.interfaces]

    field_lines = []
    for field in dex_class.fields:
        modifiers = _modifier_text(field.flags) or ["private"]
        field_lines.append(
            "    %s %s %s;" % (
                " ".join(modifiers), imports.use(field.type_name), field.name
            )
        )

    method_blocks = []
    for method in dex_class.methods:
        writer = _BodyWriter(imports, dex_class.name)
        for instruction in method.instructions:
            writer.emit(instruction)
        modifiers = _modifier_text(method.flags) or ["public"]
        parameters = ", ".join(
            "%s arg%d" % (imports.use(param), i)
            for i, param in enumerate(method.parameter_types)
        )
        if method.name == "<init>":
            signature = "    %s %s(%s) {" % (
                " ".join(m for m in modifiers if m != "static"),
                dex_class.simple_name,
                parameters,
            )
        elif method.name == "<clinit>":
            signature = "    static {"
            parameters = ""
        else:
            signature = "    %s %s %s(%s) {" % (
                " ".join(modifiers),
                imports.use(method.return_type),
                method.name,
                parameters,
            )
        block = [signature]
        block.extend("        " + line for line in writer.lines)
        block.append("    }")
        method_blocks.append("\n".join(block))

    declaration = "public class %s" % dex_class.simple_name
    if dex_class.flags & AccessFlag.INTERFACE:
        declaration = "public interface %s" % dex_class.simple_name
    elif dex_class.flags & AccessFlag.ABSTRACT:
        declaration = "public abstract class %s" % dex_class.simple_name
    if superclass_text:
        declaration += " extends %s" % superclass_text
    if interface_texts:
        declaration += " implements %s" % ", ".join(interface_texts)

    lines = ["/* Decompiled source. Original: %s */" % dex_class.source_file]
    if dex_class.package:
        lines.append("package %s;" % dex_class.package)
    lines.append("")
    import_lines = imports.import_lines()
    if import_lines:
        lines.extend(import_lines)
        lines.append("")
    lines.append(declaration + " {")
    if field_lines:
        lines.extend(field_lines)
        lines.append("")
    lines.append("\n\n".join(method_blocks))
    lines.append("}")
    return "\n".join(lines) + "\n"
