"""AST node types for the Java subset.

The pipeline consumes two things from parsed sources: the class hierarchy
(``extends`` plus import resolution, to find custom WebView subclasses) and
the method invocations inside bodies (to locate the classes that call
content-loading methods). The AST is therefore declaration-precise and
expression-pragmatic.
"""


class Node:
    """Base AST node with structural equality for tests."""

    _fields = ()

    def __eq__(self, other):
        return type(self) is type(other) and all(
            getattr(self, f) == getattr(other, f) for f in self._fields
        )

    def __repr__(self):
        inner = ", ".join(
            "%s=%r" % (f, getattr(self, f)) for f in self._fields
        )
        return "%s(%s)" % (type(self).__name__, inner)


# -- expressions --------------------------------------------------------------

class Literal(Node):
    """A string/char/int/float/bool/null literal."""

    _fields = ("value", "java_type")

    def __init__(self, value, java_type):
        self.value = value
        self.java_type = java_type


class Name(Node):
    """A possibly-qualified name: ``this``, ``webView``, ``a.b.c``."""

    _fields = ("parts",)

    def __init__(self, parts):
        if isinstance(parts, str):
            parts = parts.split(".")
        self.parts = list(parts)

    @property
    def dotted(self):
        return ".".join(self.parts)


class FieldAccess(Node):
    """``<target>.<name>`` where target is an expression."""

    _fields = ("target", "name")

    def __init__(self, target, name):
        self.target = target
        self.name = name


class MethodCall(Node):
    """``<target>.<name>(<args>)``; target is None for unqualified calls."""

    _fields = ("target", "name", "args")

    def __init__(self, target, name, args):
        self.target = target
        self.name = name
        self.args = list(args)

    def receiver_dotted(self):
        """The receiver as a dotted string, when it is a plain name."""
        if isinstance(self.target, Name):
            return self.target.dotted
        if isinstance(self.target, Cast):
            return self.target.type_name
        return None


class New(Node):
    """``new Type(args)``."""

    _fields = ("type_name", "args")

    def __init__(self, type_name, args):
        self.type_name = type_name
        self.args = list(args)


class Cast(Node):
    """``(Type) expr``."""

    _fields = ("type_name", "expr")

    def __init__(self, type_name, expr):
        self.type_name = type_name
        self.expr = expr


class Assignment(Node):
    """``lhs = rhs`` (or compound assignment)."""

    _fields = ("lhs", "operator", "rhs")

    def __init__(self, lhs, operator, rhs):
        self.lhs = lhs
        self.operator = operator
        self.rhs = rhs


class Binary(Node):
    _fields = ("operator", "left", "right")

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right


class Unary(Node):
    _fields = ("operator", "operand")

    def __init__(self, operator, operand):
        self.operator = operator
        self.operand = operand


class ArrayAccess(Node):
    _fields = ("target", "index")

    def __init__(self, target, index):
        self.target = target
        self.index = index


class Ternary(Node):
    _fields = ("condition", "if_true", "if_false")

    def __init__(self, condition, if_true, if_false):
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false


# -- statements ----------------------------------------------------------------

class ExpressionStatement(Node):
    _fields = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class LocalVariable(Node):
    """``Type name = init;``"""

    _fields = ("type_name", "name", "init")

    def __init__(self, type_name, name, init=None):
        self.type_name = type_name
        self.name = name
        self.init = init


class ReturnStatement(Node):
    _fields = ("expr",)

    def __init__(self, expr=None):
        self.expr = expr


class IfStatement(Node):
    _fields = ("condition", "then_body", "else_body")

    def __init__(self, condition, then_body, else_body=None):
        self.condition = condition
        self.then_body = list(then_body)
        self.else_body = list(else_body) if else_body is not None else None


class ThrowStatement(Node):
    _fields = ("expr",)

    def __init__(self, expr):
        self.expr = expr


# -- declarations ---------------------------------------------------------------

class FieldDecl(Node):
    _fields = ("modifiers", "type_name", "name")

    def __init__(self, modifiers, type_name, name):
        self.modifiers = list(modifiers)
        self.type_name = type_name
        self.name = name


class MethodDecl(Node):
    _fields = ("modifiers", "return_type", "name", "parameters", "body")

    def __init__(self, modifiers, return_type, name, parameters, body):
        self.modifiers = list(modifiers)
        self.return_type = return_type
        self.name = name
        self.parameters = list(parameters)  # (type_name, name) pairs
        self.body = list(body) if body is not None else None

    def walk_expressions(self):
        """Yield every expression in the body, depth-first."""
        if not self.body:
            return
        stack = list(self.body)
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if isinstance(node, (ExpressionStatement, ReturnStatement,
                                 ThrowStatement)):
                stack.append(node.expr)
                continue
            if isinstance(node, LocalVariable):
                stack.append(node.init)
                continue
            if isinstance(node, IfStatement):
                stack.append(node.condition)
                stack.extend(node.then_body)
                if node.else_body:
                    stack.extend(node.else_body)
                continue
            # Expression nodes.
            yield node
            if isinstance(node, MethodCall):
                stack.append(node.target)
                stack.extend(node.args)
            elif isinstance(node, New):
                stack.extend(node.args)
            elif isinstance(node, Assignment):
                stack.append(node.lhs)
                stack.append(node.rhs)
            elif isinstance(node, Binary):
                stack.append(node.left)
                stack.append(node.right)
            elif isinstance(node, Unary):
                stack.append(node.operand)
            elif isinstance(node, Cast):
                stack.append(node.expr)
            elif isinstance(node, FieldAccess):
                stack.append(node.target)
            elif isinstance(node, ArrayAccess):
                stack.append(node.target)
                stack.append(node.index)
            elif isinstance(node, Ternary):
                stack.append(node.condition)
                stack.append(node.if_true)
                stack.append(node.if_false)

    def method_calls(self):
        """Yield every :class:`MethodCall` in the body."""
        for expression in self.walk_expressions():
            if isinstance(expression, MethodCall):
                yield expression

    def string_literals(self):
        """Yield every string literal in the body."""
        for expression in self.walk_expressions():
            if isinstance(expression, Literal) and expression.java_type == "String":
                yield expression.value


class ClassDecl(Node):
    _fields = ("modifiers", "name", "extends", "implements", "fields",
               "methods", "is_interface", "inner_classes")

    def __init__(self, modifiers, name, extends=None, implements=None,
                 fields=None, methods=None, is_interface=False,
                 inner_classes=None):
        self.modifiers = list(modifiers)
        self.name = name
        self.extends = extends
        self.implements = list(implements or [])
        self.fields = list(fields or [])
        self.methods = list(methods or [])
        self.is_interface = is_interface
        self.inner_classes = list(inner_classes or [])


class CompilationUnit(Node):
    _fields = ("package", "imports", "types")

    def __init__(self, package, imports, types):
        self.package = package
        self.imports = list(imports)
        self.types = list(types)

    def resolve_type(self, simple_or_qualified):
        """Resolve a type name against imports and the package.

        ``WebView`` resolves to ``android.webkit.WebView`` when imported;
        already-qualified names pass through; otherwise the name is assumed
        to live in this compilation unit's package.
        """
        name = simple_or_qualified
        if "." in name:
            return name
        for imported in self.imports:
            if imported.endswith("." + name):
                return imported
        if self.package:
            return "%s.%s" % (self.package, name)
        return name

    def classes_extending(self, qualified_base):
        """Return classes (incl. inner) whose resolved superclass matches."""
        matches = []

        def visit(class_decl):
            if class_decl.extends is not None:
                if self.resolve_type(class_decl.extends) == qualified_base:
                    matches.append(class_decl)
            for inner in class_decl.inner_classes:
                visit(inner)

        for type_decl in self.types:
            visit(type_decl)
        return matches
