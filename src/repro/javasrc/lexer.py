"""A Java tokenizer.

Produces a flat token stream with line/column positions; comments and
whitespace are consumed and discarded. Covers the token classes present in
decompiled Android sources: identifiers, keywords, integer/floating/string/
char literals, operators and punctuation.
"""

import enum

from repro.errors import JavaSyntaxError

KEYWORDS = frozenset(
    """abstract assert boolean break byte case catch char class const continue
    default do double else enum extends final finally float for goto if
    implements import instanceof int interface long native new package
    private protected public return short static strictfp super switch
    synchronized this throw throws transient try void volatile while
    true false null""".split()
)


class TokenKind(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"
    OPERATOR = "operator"
    EOF = "eof"


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (
            self.kind.name, self.value, self.line, self.column
        )

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and (self.kind, self.value) == (other.kind, other.value)
        )


# Longest-first so that multi-character operators win.
_OPERATORS = sorted(
    [
        ">>>=", "<<=", ">>=", ">>>", "...", "->", "::", "==", "!=", "<=",
        ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
        "|=", "^=", "<<", ">>", "+", "-", "*", "/", "%", "=", "<", ">",
        "!", "~", "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "{",
        "}", "[", "]", "@",
    ],
    key=len,
    reverse=True,
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "'": "'", '"': '"', "\\": "\\", "0": "\0",
}


def tokenize(source):
    """Tokenize Java source text into a list of :class:`Token`.

    Raises :class:`~repro.errors.JavaSyntaxError` on unterminated strings,
    unterminated block comments or unexpected characters.
    """
    tokens = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def error(message):
        raise JavaSyntaxError(message, line=line, column=column)

    while index < length:
        char = source[index]

        if char in " \t":
            index += 1
            column += 1
            continue
        if char == "\r":
            index += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue

        # Comments.
        if char == "/" and index + 1 < length:
            following = source[index + 1]
            if following == "/":
                end = source.find("\n", index)
                if end < 0:
                    index = length
                else:
                    index = end
                continue
            if following == "*":
                end = source.find("*/", index + 2)
                if end < 0:
                    error("unterminated block comment")
                skipped = source[index: end + 2]
                newlines = skipped.count("\n")
                if newlines:
                    line += newlines
                    column = len(skipped) - skipped.rfind("\n")
                else:
                    column += len(skipped)
                index = end + 2
                continue

        # String literals.
        if char == '"':
            start_line, start_column = line, column
            index += 1
            column += 1
            value_chars = []
            while True:
                if index >= length:
                    error("unterminated string literal")
                current = source[index]
                if current == "\n":
                    error("newline in string literal")
                if current == '"':
                    index += 1
                    column += 1
                    break
                if current == "\\":
                    if index + 1 >= length:
                        error("unterminated escape sequence")
                    escape = source[index + 1]
                    if escape == "u":
                        hex_digits = source[index + 2: index + 6]
                        if len(hex_digits) != 4:
                            error("bad unicode escape")
                        try:
                            code_unit = int(hex_digits, 16)
                        except ValueError:
                            error("bad unicode escape")
                        index += 6
                        column += 6
                        # Combine UTF-16 surrogate pairs (Java string model).
                        if 0xD800 <= code_unit <= 0xDBFF and source.startswith(
                            "\\u", index
                        ):
                            low_digits = source[index + 2: index + 6]
                            try:
                                low_unit = int(low_digits, 16)
                            except ValueError:
                                low_unit = -1
                            if 0xDC00 <= low_unit <= 0xDFFF:
                                combined = 0x10000 + (
                                    (code_unit - 0xD800) << 10
                                ) + (low_unit - 0xDC00)
                                value_chars.append(chr(combined))
                                index += 6
                                column += 6
                                continue
                        value_chars.append(chr(code_unit))
                        continue
                    value_chars.append(_ESCAPES.get(escape, escape))
                    index += 2
                    column += 2
                    continue
                value_chars.append(current)
                index += 1
                column += 1
            tokens.append(Token(TokenKind.STRING, "".join(value_chars),
                                start_line, start_column))
            continue

        # Char literals.
        if char == "'":
            start_line, start_column = line, column
            index += 1
            column += 1
            if index < length and source[index] == "\\":
                if index + 1 >= length:
                    error("unterminated char literal")
                value = _ESCAPES.get(source[index + 1], source[index + 1])
                index += 2
                column += 2
            elif index < length:
                value = source[index]
                index += 1
                column += 1
            else:
                error("unterminated char literal")
            if index >= length or source[index] != "'":
                error("unterminated char literal")
            index += 1
            column += 1
            tokens.append(Token(TokenKind.CHAR, value, start_line, start_column))
            continue

        # Numbers.
        if char.isdigit():
            start = index
            start_column = column
            is_float = False
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and (source[index] in "0123456789abcdefABCDEF_"):
                    index += 1
            else:
                while index < length and (source[index].isdigit() or source[index] == "_"):
                    index += 1
                if index < length and source[index] == "." and (
                    index + 1 < length and source[index + 1].isdigit()
                ):
                    is_float = True
                    index += 1
                    while index < length and source[index].isdigit():
                        index += 1
                if index < length and source[index] in "eE":
                    is_float = True
                    index += 1
                    if index < length and source[index] in "+-":
                        index += 1
                    while index < length and source[index].isdigit():
                        index += 1
            if index < length and source[index] in "fFdD":
                is_float = True
                index += 1
            elif index < length and source[index] in "lL":
                index += 1
            text = source[start:index]
            column = start_column + (index - start)
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text, line, start_column))
            continue

        # Identifiers and keywords.
        if char.isalpha() or char in "_$":
            start = index
            start_column = column
            while index < length and (source[index].isalnum() or source[index] in "_$"):
                index += 1
            text = source[start:index]
            column = start_column + (index - start)
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
            tokens.append(Token(kind, text, line, start_column))
            continue

        # Operators / punctuation.
        matched = None
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                matched = operator
                break
        if matched is None:
            error("unexpected character %r" % char)
        tokens.append(Token(TokenKind.OPERATOR, matched, line, column))
        index += len(matched)
        column += len(matched)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
