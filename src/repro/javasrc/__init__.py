"""Java source substrate.

The paper decompiles APKs to Java with JADX and parses each source file with
``javalang`` to find classes that extend ``android.webkit.WebView``
(Section 3.1.2). This package provides the equivalent machinery:

- :mod:`repro.javasrc.lexer` — a Java tokenizer,
- :mod:`repro.javasrc.ast` — AST node types,
- :mod:`repro.javasrc.parser` — a recursive-descent parser for the Java
  subset that our decompiler emits (declarations parsed precisely, method
  bodies parsed to expression statements with full call extraction),
- :mod:`repro.javasrc.codegen` — DEX → Java source generation, used by
  the decompiler.
"""

from repro.javasrc.lexer import Token, TokenKind, tokenize
from repro.javasrc.ast import (
    CompilationUnit,
    ClassDecl,
    FieldDecl,
    MethodDecl,
    MethodCall,
    Literal,
    Name,
    New,
    Assignment,
    Cast,
    FieldAccess,
)
from repro.javasrc.parser import parse_java, try_parse_java
from repro.javasrc.codegen import generate_source

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "CompilationUnit",
    "ClassDecl",
    "FieldDecl",
    "MethodDecl",
    "MethodCall",
    "Literal",
    "Name",
    "New",
    "Assignment",
    "Cast",
    "FieldAccess",
    "parse_java",
    "try_parse_java",
    "generate_source",
]
