"""Recursive-descent parser for the Java subset emitted by the decompiler.

Parses compilation units with packages, imports, (inner) classes and
interfaces, fields, and methods. Method bodies are parsed into statements
with a full expression grammar (assignment, ternary, binary precedence,
unary, casts, ``new``, calls, field access, array access), which is what the
pipeline needs to extract every method invocation.

Unknown constructs fail loudly with :class:`~repro.errors.JavaSyntaxError`
rather than being skipped, matching how a real parser forces decompiler
output to stay well-formed.
"""

from repro.errors import JavaSyntaxError
from repro.javasrc.lexer import Token, TokenKind, tokenize
from repro.javasrc import ast

_MODIFIERS = frozenset(
    "public private protected static final abstract native synchronized"
    " transient volatile strictfp default".split()
)

_BINARY_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">=", "instanceof"),
    ("<<", ">>", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = frozenset(
    ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="]
)


def parse_java(source):
    """Parse Java source text into a :class:`~repro.javasrc.ast.CompilationUnit`."""
    return _Parser(tokenize(source)).parse_compilation_unit()


def try_parse_java(source):
    """Parse, returning None on syntax errors instead of raising.

    The paper skips javalang failures per file rather than failing the
    app; this is the entry seam the pipeline (and the per-class facts
    computation) uses for that policy.
    """
    try:
        return parse_java(source)
    except JavaSyntaxError:
        return None


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.position]

    def peek(self, offset=0):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.current
        if token.kind != TokenKind.EOF:
            self.position += 1
        return token

    def error(self, message):
        token = self.current
        raise JavaSyntaxError(
            "%s (got %r at %d:%d)" % (message, token.value, token.line,
                                      token.column),
            line=token.line,
            column=token.column,
        )

    def at(self, value):
        return self.current.value == value and self.current.kind in (
            TokenKind.OPERATOR, TokenKind.KEYWORD
        )

    def accept(self, value):
        if self.at(value):
            return self.advance()
        return None

    def expect(self, value):
        if not self.at(value):
            self.error("expected %r" % value)
        return self.advance()

    def at_identifier(self):
        return self.current.kind == TokenKind.IDENTIFIER

    def expect_identifier(self):
        if not self.at_identifier():
            self.error("expected identifier")
        return self.advance().value

    # -- compilation unit -------------------------------------------------------

    def parse_compilation_unit(self):
        package = None
        if self.at("package"):
            self.advance()
            package = self.parse_qualified_name()
            self.expect(";")
        imports = []
        while self.at("import"):
            self.advance()
            self.accept("static")
            name = self.parse_qualified_name()
            if self.accept("."):
                self.expect("*")
                name += ".*"
            self.expect(";")
            imports.append(name)
        types = []
        while self.current.kind != TokenKind.EOF:
            types.append(self.parse_type_decl())
        return ast.CompilationUnit(package, imports, types)

    def parse_qualified_name(self):
        parts = [self.expect_identifier()]
        while self.at(".") and self.peek(1).kind == TokenKind.IDENTIFIER:
            self.advance()
            parts.append(self.expect_identifier())
        return ".".join(parts)

    # -- declarations ------------------------------------------------------------

    def parse_annotations(self):
        while self.at("@"):
            self.advance()
            self.parse_qualified_name()
            if self.at("("):
                self.skip_balanced("(", ")")

    def skip_balanced(self, open_token, close_token):
        self.expect(open_token)
        depth = 1
        while depth > 0:
            if self.current.kind == TokenKind.EOF:
                self.error("unbalanced %r" % open_token)
            if self.at(open_token):
                depth += 1
            elif self.at(close_token):
                depth -= 1
            self.advance()

    def parse_modifiers(self):
        modifiers = []
        while True:
            self.parse_annotations()
            if self.current.kind == TokenKind.KEYWORD and (
                self.current.value in _MODIFIERS
            ):
                modifiers.append(self.advance().value)
            else:
                return modifiers

    def parse_type_decl(self):
        modifiers = self.parse_modifiers()
        if self.at("class"):
            return self.parse_class_body(modifiers, is_interface=False)
        if self.at("interface"):
            return self.parse_class_body(modifiers, is_interface=True)
        if self.at("enum"):
            return self.parse_enum(modifiers)
        self.error("expected type declaration")

    def parse_type_name(self):
        """A type: qualified name with optional generics and array dims."""
        if self.current.kind == TokenKind.KEYWORD and self.current.value in (
            "int", "long", "short", "byte", "char", "boolean", "float",
            "double", "void",
        ):
            name = self.advance().value
        else:
            name = self.parse_qualified_name()
        if self.at("<"):
            self.skip_generics()
        while self.at("[") :
            self.advance()
            self.expect("]")
            name += "[]"
        return name

    def skip_generics(self):
        self.expect("<")
        depth = 1
        while depth > 0:
            if self.current.kind == TokenKind.EOF:
                self.error("unbalanced generics")
            if self.at("<"):
                depth += 1
            elif self.at(">"):
                depth -= 1
            elif self.at(">>"):
                depth -= 2
            elif self.at(">>>"):
                depth -= 3
            self.advance()

    def parse_class_body(self, modifiers, is_interface):
        self.advance()  # 'class' or 'interface'
        name = self.expect_identifier()
        if self.at("<"):
            self.skip_generics()
        extends = None
        implements = []
        if self.accept("extends"):
            extends = self.parse_type_name()
            while is_interface and self.accept(","):
                implements.append(self.parse_type_name())
        if self.accept("implements"):
            implements.append(self.parse_type_name())
            while self.accept(","):
                implements.append(self.parse_type_name())
        self.expect("{")
        fields, methods, inner = [], [], []
        while not self.at("}"):
            if self.current.kind == TokenKind.EOF:
                self.error("unterminated class body")
            for member in self.parse_member(name):
                if isinstance(member, ast.FieldDecl):
                    fields.append(member)
                elif isinstance(member, ast.MethodDecl):
                    methods.append(member)
                elif isinstance(member, ast.ClassDecl):
                    inner.append(member)
        self.expect("}")
        return ast.ClassDecl(
            modifiers, name, extends=extends, implements=implements,
            fields=fields, methods=methods, is_interface=is_interface,
            inner_classes=inner,
        )

    def parse_enum(self, modifiers):
        self.advance()
        name = self.expect_identifier()
        if self.accept("implements"):
            self.parse_type_name()
            while self.accept(","):
                self.parse_type_name()
        self.expect("{")
        # Enum constants (identifiers, optionally with args), until ';' or '}'.
        while self.at_identifier():
            self.advance()
            if self.at("("):
                self.skip_balanced("(", ")")
            if not self.accept(","):
                break
        methods, fields, inner = [], [], []
        if self.accept(";"):
            while not self.at("}"):
                for member in self.parse_member(name):
                    if isinstance(member, ast.FieldDecl):
                        fields.append(member)
                    elif isinstance(member, ast.MethodDecl):
                        methods.append(member)
                    elif isinstance(member, ast.ClassDecl):
                        inner.append(member)
        self.expect("}")
        return ast.ClassDecl(modifiers, name, fields=fields, methods=methods,
                             inner_classes=inner)

    def parse_member(self, class_name):
        """Parse one class member; returns a list (multi-field decls)."""
        modifiers = self.parse_modifiers()
        if self.at("class") or self.at("interface"):
            return [self.parse_class_body(
                modifiers, is_interface=self.at("interface"))]
        if self.at("enum"):
            return [self.parse_enum(modifiers)]
        if self.at("{"):  # static/instance initializer block
            body = self.parse_block()
            return [ast.MethodDecl(modifiers, "void", "<clinit>", [], body)]
        # Constructor: identifier matching class name followed by '('.
        if (
            self.at_identifier()
            and self.current.value == class_name
            and self.peek(1).value == "("
        ):
            self.advance()
            parameters = self.parse_parameters()
            self.skip_throws()
            body = self.parse_block()
            return [ast.MethodDecl(modifiers, None, "<init>", parameters, body)]
        return_type = self.parse_type_name()
        name = self.expect_identifier()
        if self.at("("):
            parameters = self.parse_parameters()
            self.skip_throws()
            if self.accept(";"):
                body = None  # abstract / interface method
            else:
                body = self.parse_block()
            return [ast.MethodDecl(modifiers, return_type, name, parameters,
                                   body)]
        # Field declaration (single or comma-separated); initializer
        # expressions are parsed but not retained.
        if self.accept("="):
            self.parse_expression()
        fields = [ast.FieldDecl(modifiers, return_type, name)]
        while self.accept(","):
            extra = self.expect_identifier()
            if self.accept("="):
                self.parse_expression()
            fields.append(ast.FieldDecl(modifiers, return_type, extra))
        self.expect(";")
        return fields

    def skip_throws(self):
        if self.accept("throws"):
            self.parse_type_name()
            while self.accept(","):
                self.parse_type_name()

    def parse_parameters(self):
        self.expect("(")
        parameters = []
        if not self.at(")"):
            while True:
                self.parse_annotations()
                self.accept("final")
                type_name = self.parse_type_name()
                if self.accept("..."):
                    type_name += "[]"
                name = self.expect_identifier()
                while self.at("["):
                    self.advance()
                    self.expect("]")
                    type_name += "[]"
                parameters.append((type_name, name))
                if not self.accept(","):
                    break
        self.expect(")")
        return parameters

    # -- statements ----------------------------------------------------------------

    def parse_block(self):
        self.expect("{")
        statements = []
        while not self.at("}"):
            if self.current.kind == TokenKind.EOF:
                self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect("}")
        return statements

    def parse_statement(self):
        if self.at("{"):
            # Flatten nested blocks into an if(true)-style wrapper-free list:
            # represent as statements of an IfStatement with constant true?
            # Simpler: return them inline via a synthetic if.
            body = self.parse_block()
            return ast.IfStatement(ast.Literal(True, "boolean"), body)
        if self.at("return"):
            self.advance()
            expr = None
            if not self.at(";"):
                expr = self.parse_expression()
            self.expect(";")
            return ast.ReturnStatement(expr)
        if self.at("throw"):
            self.advance()
            expr = self.parse_expression()
            self.expect(";")
            return ast.ThrowStatement(expr)
        if self.at("if"):
            return self.parse_if()
        if self.at(";"):
            self.advance()
            return ast.ExpressionStatement(ast.Literal(None, "null"))
        # Local variable declaration vs expression statement: try to detect
        # "Type name" / "Type name =".
        if self.looks_like_local_declaration():
            type_name = self.parse_type_name()
            name = self.expect_identifier()
            while self.at("["):
                self.advance()
                self.expect("]")
                type_name += "[]"
            init = None
            if self.accept("="):
                init = self.parse_expression()
            self.expect(";")
            return ast.LocalVariable(type_name, name, init)
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExpressionStatement(expr)

    def looks_like_local_declaration(self):
        """Heuristic lookahead: <type> <identifier> ( '=' | ';' | '[' )."""
        if self.current.kind == TokenKind.KEYWORD and self.current.value in (
            "int", "long", "short", "byte", "char", "boolean", "float",
            "double",
        ):
            return True
        if self.current.kind != TokenKind.IDENTIFIER:
            return False
        offset = 0
        # Qualified name.
        while True:
            if self.peek(offset).kind != TokenKind.IDENTIFIER:
                return False
            offset += 1
            if self.peek(offset).value == "." and (
                self.peek(offset + 1).kind == TokenKind.IDENTIFIER
            ):
                offset += 1
                continue
            break
        # Optional generics.
        if self.peek(offset).value == "<":
            depth = 1
            offset += 1
            while depth > 0:
                token = self.peek(offset)
                if token.kind == TokenKind.EOF:
                    return False
                if token.value == "<":
                    depth += 1
                elif token.value == ">":
                    depth -= 1
                elif token.value == ">>":
                    depth -= 2
                offset += 1
        # Optional array dims.
        while self.peek(offset).value == "[" and self.peek(offset + 1).value == "]":
            offset += 2
        token = self.peek(offset)
        if token.kind != TokenKind.IDENTIFIER:
            return False
        following = self.peek(offset + 1).value
        return following in ("=", ";", "[")

    def parse_if(self):
        self.expect("if")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        then_body = (
            self.parse_block() if self.at("{") else [self.parse_statement()]
        )
        else_body = None
        if self.accept("else"):
            if self.at("if"):
                else_body = [self.parse_if()]
            elif self.at("{"):
                else_body = self.parse_block()
            else:
                else_body = [self.parse_statement()]
        return ast.IfStatement(condition, then_body, else_body)

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self):
        return self.parse_assignment()

    def parse_assignment(self):
        left = self.parse_ternary()
        if self.current.kind == TokenKind.OPERATOR and (
            self.current.value in _ASSIGN_OPS
        ):
            operator = self.advance().value
            right = self.parse_assignment()
            return ast.Assignment(left, operator, right)
        return left

    def parse_ternary(self):
        condition = self.parse_binary(0)
        if self.accept("?"):
            if_true = self.parse_expression()
            self.expect(":")
            if_false = self.parse_expression()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def parse_binary(self, level):
        if level >= len(_BINARY_PRECEDENCE):
            return self.parse_unary()
        operators = _BINARY_PRECEDENCE[level]
        left = self.parse_binary(level + 1)
        while self.current.value in operators and self.current.kind in (
            TokenKind.OPERATOR, TokenKind.KEYWORD
        ):
            operator = self.advance().value
            if operator == "instanceof":
                right = ast.Name(self.parse_type_name())
            else:
                right = self.parse_binary(level + 1)
            left = ast.Binary(operator, left, right)
        return left

    def parse_unary(self):
        if self.current.value in ("!", "-", "+", "~", "++", "--") and (
            self.current.kind == TokenKind.OPERATOR
        ):
            operator = self.advance().value
            return ast.Unary(operator, self.parse_unary())
        # Cast: '(' Type ')' followed by a primary-start token.
        if self.at("(") and self.is_cast_ahead():
            self.expect("(")
            type_name = self.parse_type_name()
            self.expect(")")
            return ast.Cast(type_name, self.parse_unary())
        return self.parse_postfix()

    def is_cast_ahead(self):
        """Lookahead for '(' Type ')' <operand>."""
        offset = 1
        token = self.peek(offset)
        if token.kind == TokenKind.KEYWORD and token.value in (
            "int", "long", "short", "byte", "char", "boolean", "float",
            "double",
        ):
            offset += 1
        elif token.kind == TokenKind.IDENTIFIER:
            offset += 1
            while self.peek(offset).value == "." and (
                self.peek(offset + 1).kind == TokenKind.IDENTIFIER
            ):
                offset += 2
        else:
            return False
        while self.peek(offset).value == "[" and self.peek(offset + 1).value == "]":
            offset += 2
        if self.peek(offset).value != ")":
            return False
        after = self.peek(offset + 1)
        return (
            after.kind in (TokenKind.IDENTIFIER, TokenKind.STRING,
                           TokenKind.INT, TokenKind.FLOAT, TokenKind.CHAR)
            or after.value in ("(", "new", "this", "super", "!", "~")
        )

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            if self.at(".") :
                self.advance()
                name = self.expect_identifier_or_keyword()
                if self.at("("):
                    args = self.parse_arguments()
                    expr = ast.MethodCall(expr, name, args)
                else:
                    expr = ast.FieldAccess(expr, name)
                continue
            if self.at("["):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.ArrayAccess(expr, index)
                continue
            if self.current.value in ("++", "--") and (
                self.current.kind == TokenKind.OPERATOR
            ):
                operator = self.advance().value
                expr = ast.Unary("post" + operator, expr)
                continue
            return expr

    def expect_identifier_or_keyword(self):
        if self.current.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            return self.advance().value
        self.error("expected member name")

    def parse_arguments(self):
        self.expect("(")
        args = []
        if not self.at(")"):
            args.append(self.parse_expression())
            while self.accept(","):
                args.append(self.parse_expression())
        self.expect(")")
        return args

    def parse_primary(self):
        token = self.current
        if token.kind == TokenKind.STRING:
            self.advance()
            return ast.Literal(token.value, "String")
        if token.kind == TokenKind.CHAR:
            self.advance()
            return ast.Literal(token.value, "char")
        if token.kind == TokenKind.INT:
            self.advance()
            return ast.Literal(_parse_int(token.value), "int")
        if token.kind == TokenKind.FLOAT:
            self.advance()
            return ast.Literal(float(token.value.rstrip("fFdD")), "double")
        if self.at("true") or self.at("false"):
            value = self.advance().value == "true"
            return ast.Literal(value, "boolean")
        if self.at("null"):
            self.advance()
            return ast.Literal(None, "null")
        if self.at("this"):
            self.advance()
            if self.at("("):
                args = self.parse_arguments()
                return ast.MethodCall(None, "this", args)
            return ast.Name(["this"])
        if self.at("super"):
            self.advance()
            if self.at("("):
                args = self.parse_arguments()
                return ast.MethodCall(None, "super", args)
            self.expect(".")
            name = self.expect_identifier()
            if self.at("("):
                args = self.parse_arguments()
                return ast.MethodCall(ast.Name(["super"]), name, args)
            return ast.FieldAccess(ast.Name(["super"]), name)
        if self.at("new"):
            self.advance()
            type_name = self.parse_type_name()
            if self.at("("):
                args = self.parse_arguments()
                if self.at("{"):  # anonymous class body
                    self.skip_balanced("{", "}")
                return ast.New(type_name, args)
            if self.at("["):
                self.advance()
                if not self.at("]"):
                    self.parse_expression()
                self.expect("]")
                while self.at("["):
                    self.advance()
                    self.expect("]")
                if self.at("{"):
                    self.skip_balanced("{", "}")
                return ast.New(type_name + "[]", [])
            self.error("expected '(' or '[' after new")
        if self.at("("):
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind == TokenKind.IDENTIFIER:
            name = self.advance().value
            if self.at("("):
                args = self.parse_arguments()
                return ast.MethodCall(None, name, args)
            return ast.Name([name])
        self.error("unexpected token in expression")


def _parse_int(text):
    text = text.rstrip("lL").replace("_", "")
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text)
