"""Google Play Store substrate: catalog, scraper client, SDK Index."""

from repro.playstore.models import AppListing, AppCategory
from repro.playstore.store import PlayStore, PlayScraperClient
from repro.playstore.sdkindex import PlaySdkIndex, SdkIndexEntry

__all__ = [
    "AppListing",
    "AppCategory",
    "PlayStore",
    "PlayScraperClient",
    "PlaySdkIndex",
    "SdkIndexEntry",
]
