"""The Google Play SDK Index analogue (Section 3.1.4).

The paper labels invoking Java packages against the Play SDK Index (plus
supplementary search) to map them to named SDKs with categories. This
module provides that lookup: longest-prefix matching of a Java package name
against registered SDK package prefixes.
"""


class SdkIndexEntry:
    """One indexed SDK: display name, category label, package prefixes."""

    def __init__(self, name, category, package_prefixes):
        self.name = name
        self.category = category
        self.package_prefixes = tuple(package_prefixes)

    def matches(self, java_package):
        """True if ``java_package`` is inside any registered prefix."""
        for prefix in self.package_prefixes:
            if java_package == prefix or java_package.startswith(prefix + "."):
                return True
        return False

    def __repr__(self):
        return "SdkIndexEntry(%s, %s)" % (self.name, self.category)


class PlaySdkIndex:
    """Longest-prefix package -> SDK lookup."""

    def __init__(self, entries=()):
        self._by_prefix = {}
        for entry in entries:
            self.register(entry)

    def register(self, entry):
        for prefix in entry.package_prefixes:
            self._by_prefix[prefix] = entry
        return entry

    def lookup_package(self, java_package):
        """Return the SdkIndexEntry owning ``java_package``, or None.

        Uses longest-prefix matching so that e.g. ``com.google.firebase``
        wins over a hypothetical ``com.google`` entry.
        """
        parts = java_package.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            entry = self._by_prefix.get(prefix)
            if entry is not None:
                return entry
        return None

    def entries(self):
        seen = []
        for entry in self._by_prefix.values():
            if entry not in seen:
                seen.append(entry)
        return seen

    def __len__(self):
        return len(self.entries())
