"""The Play Store catalog and a google-play-scraper-style client.

The paper fetches metadata from the Play Store for every AndroZoo app to
filter on installs and update recency (Section 3.1.1). Notably, only ~2.45M
of AndroZoo's 6.5M Play-Store-sourced apps were still *found* on the store
(Table 2) — the rest were delisted. The catalog models both live listings
and delisted packages so the same funnel emerges from measurement.
"""

from repro.errors import AppNotFoundError
from repro.playstore.models import AppListing


class PlayStore:
    """The store-side catalog: listings plus a set of delisted packages."""

    def __init__(self):
        self._listings = {}
        self._delisted = set()

    def publish(self, listing):
        if not isinstance(listing, AppListing):
            raise TypeError("publish() requires an AppListing")
        self._listings[listing.package] = listing
        self._delisted.discard(listing.package)
        return listing

    def delist(self, package):
        """Remove an app from the storefront (keeps AndroZoo history valid)."""
        self._listings.pop(package, None)
        self._delisted.add(package)

    def lookup(self, package):
        listing = self._listings.get(package)
        if listing is None:
            raise AppNotFoundError(package)
        return listing

    def is_listed(self, package):
        return package in self._listings

    def all_listings(self):
        return list(self._listings.values())

    def __len__(self):
        return len(self._listings)


class PlayScraperClient:
    """Client-side metadata fetcher (the google-play-scraper analogue).

    Returns raw metadata dictionaries and raises
    :class:`~repro.errors.AppNotFoundError` for delisted apps, which the
    pipeline counts when producing the Table 2 funnel.
    """

    def __init__(self, store):
        self._store = store
        self.requests_made = 0
        self.not_found = 0

    def app(self, package):
        """Fetch one app's metadata dict; raises AppNotFoundError."""
        self.requests_made += 1
        try:
            listing = self._store.lookup(package)
        except AppNotFoundError:
            self.not_found += 1
            raise
        return listing.to_dict()

    def app_listing(self, package):
        """Fetch one app's metadata as an :class:`AppListing`."""
        self.requests_made += 1
        try:
            return self._store.lookup(package)
        except AppNotFoundError:
            self.not_found += 1
            raise

    def try_app_listing(self, package):
        """Like :meth:`app_listing` but returns None when delisted."""
        try:
            return self.app_listing(package)
        except AppNotFoundError:
            return None
