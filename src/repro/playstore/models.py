"""Play Store data models."""

import datetime
import enum


class AppCategory(enum.Enum):
    """Play Store app categories (the subset relevant to the paper).

    Figure 3 plots per-category SDK use for the top-10 categories, which in
    the paper are dominated by game categories (Puzzle, Simulation, Action,
    Arcade) plus Education and general-purpose categories.
    """

    PUZZLE = "Puzzle"
    SIMULATION = "Simulation"
    ACTION = "Action"
    ARCADE = "Arcade"
    CASUAL = "Casual"
    EDUCATION = "Education"
    ENTERTAINMENT = "Entertainment"
    TOOLS = "Tools"
    LIFESTYLE = "Lifestyle"
    FINANCE = "Finance"
    SOCIAL = "Social"
    COMMUNICATION = "Communication"
    MUSIC = "Music & Audio"
    NEWS = "News & Magazines"
    SHOPPING = "Shopping"
    SPORTS = "Sports"
    TRAVEL = "Travel & Local"
    PRODUCTIVITY = "Productivity"
    HEALTH = "Health & Fitness"
    PHOTOGRAPHY = "Photography"

    def __str__(self):
        return self.value

    @property
    def is_game(self):
        return self in (
            AppCategory.PUZZLE, AppCategory.SIMULATION, AppCategory.ACTION,
            AppCategory.ARCADE, AppCategory.CASUAL,
        )


class AppListing:
    """Store metadata for one app, as google-play-scraper would return."""

    def __init__(self, package, title, category, installs, updated,
                 developer="", rating=0.0, free=True):
        self.package = package
        self.title = title
        self.category = category
        self.installs = int(installs)
        # ``updated`` is a date (the paper filters on "updated after
        # January 1, 2021").
        if isinstance(updated, str):
            updated = datetime.date.fromisoformat(updated)
        self.updated = updated
        self.developer = developer
        self.rating = rating
        self.free = free

    def to_dict(self):
        """The scraper's raw-dictionary view of the listing."""
        return {
            "appId": self.package,
            "title": self.title,
            "genre": str(self.category),
            "minInstalls": self.installs,
            "updated": self.updated.isoformat(),
            "developer": self.developer,
            "score": self.rating,
            "free": self.free,
        }

    def __repr__(self):
        return "AppListing(%s, %s, %d installs)" % (
            self.package, self.category, self.installs
        )
