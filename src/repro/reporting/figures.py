"""Text rendering of figure-style data: bar series, grouped series, heatmaps.

The paper's figures (3, 4, 6, 7) are reproduced as numeric series; these
classes render them legibly in a terminal so the shape of each figure can be
compared against the published plot.
"""


class BarSeries:
    """A single labelled series rendered as horizontal text bars."""

    def __init__(self, title, unit="", max_width=40):
        self.title = title
        self.unit = unit
        self.max_width = max_width
        self.points = []

    def add(self, label, value):
        self.points.append((str(label), float(value)))

    def render(self):
        lines = [self.title]
        if not self.points:
            return "\n".join(lines + ["(no data)"])
        label_width = max(len(label) for label, _ in self.points)
        peak = max(value for _, value in self.points) or 1.0
        for label, value in self.points:
            bar = "#" * max(1, int(round(self.max_width * value / peak))) if value > 0 else ""
            lines.append(
                "%s  %8.2f%s  %s" % (label.ljust(label_width), value, self.unit, bar)
            )
        return "\n".join(lines)

    def as_dict(self):
        return dict(self.points)

    def __str__(self):
        return self.render()


class GroupedSeries:
    """Several named series over a shared category axis (Figure 3 / 6)."""

    def __init__(self, title, categories):
        self.title = title
        self.categories = list(categories)
        self.series = {}

    def add_series(self, name, values):
        values = list(values)
        if len(values) != len(self.categories):
            raise ValueError(
                "series %r has %d values for %d categories"
                % (name, len(values), len(self.categories))
            )
        self.series[name] = values

    def render(self):
        lines = [self.title]
        name_width = max(
            [len(str(c)) for c in self.categories] + [len("category")]
        )
        header = "category".ljust(name_width) + "  " + "  ".join(
            "%12s" % name[:12] for name in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for i, category in enumerate(self.categories):
            row = str(category).ljust(name_width) + "  " + "  ".join(
                "%12.2f" % values[i] for values in self.series.values()
            )
            lines.append(row)
        return "\n".join(lines)

    def as_dict(self):
        return {
            name: dict(zip(self.categories, values))
            for name, values in self.series.items()
        }

    def __str__(self):
        return self.render()


class Heatmap:
    """A 2-D matrix of percentages (Figure 4 style)."""

    SHADES = " .:-=+*#%@"

    def __init__(self, title, row_labels, column_labels):
        self.title = title
        self.row_labels = list(row_labels)
        self.column_labels = list(column_labels)
        self.values = {
            (r, c): 0.0 for r in self.row_labels for c in self.column_labels
        }

    def set(self, row, column, value):
        if (row, column) not in self.values:
            raise KeyError((row, column))
        self.values[(row, column)] = float(value)

    def get(self, row, column):
        return self.values[(row, column)]

    def _shade(self, value, peak):
        if peak <= 0:
            return self.SHADES[0]
        index = int(round((len(self.SHADES) - 1) * value / peak))
        return self.SHADES[max(0, min(len(self.SHADES) - 1, index))]

    def render(self, numeric=True):
        lines = [self.title]
        row_width = max(len(str(r)) for r in self.row_labels)
        col_width = 7 if numeric else 2
        header = " " * row_width + " " + "".join(
            str(c)[: col_width - 1].rjust(col_width) for c in self.column_labels
        )
        lines.append(header)
        peak = max(self.values.values()) if self.values else 0.0
        for row in self.row_labels:
            cells = []
            for column in self.column_labels:
                value = self.values[(row, column)]
                if numeric:
                    cells.append(("%.1f" % value).rjust(col_width))
                else:
                    cells.append(self._shade(value, peak).rjust(col_width))
            lines.append(str(row).ljust(row_width) + " " + "".join(cells))
        return "\n".join(lines)

    def as_dict(self):
        result = {}
        for row in self.row_labels:
            result[row] = {
                column: self.values[(row, column)]
                for column in self.column_labels
            }
        return result

    def __str__(self):
        return self.render()
