"""Markdown export for tables, used to keep EXPERIMENTS.md current."""


def table_to_markdown(table):
    """Render a :class:`repro.reporting.Table` as GitHub-flavored markdown."""
    records = table.as_records()
    columns = table.columns
    lines = []
    if table.title:
        lines.append("**%s**" % table.title)
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join(["---"] * len(columns)) + "|")
    for record in records:
        cells = []
        for column in columns:
            value = record[column]
            if isinstance(value, int) and not isinstance(value, bool):
                cells.append("{:,}".format(value))
            elif isinstance(value, float):
                cells.append("%.1f" % value)
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
