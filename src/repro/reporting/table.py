"""ASCII table rendering in the style of the paper's tables."""

from repro.util import format_count


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["Dataset", "No. of apps"], title="Table 2")
    >>> t.add_row("Play Store apps in Androzoo", 6507222)
    >>> print(t.render())  # doctest: +ELLIPSIS
    Table 2
    ...
    """

    def __init__(self, columns, title=None, align=None):
        self.columns = [str(c) for c in columns]
        self.title = title
        # 'l' or 'r' per column; numbers default to right alignment.
        self.align = list(align) if align else None
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.columns):
            raise ValueError(
                "expected %d cells, got %d" % (len(self.columns), len(cells))
            )
        self.rows.append(list(cells))

    def add_section(self, label):
        """Insert a section separator row (rendered as a ruled label)."""
        self.rows.append(_Section(label))

    @staticmethod
    def _format_cell(cell):
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, int):
            return format_count(cell)
        if isinstance(cell, float):
            return "%.1f" % cell
        return str(cell)

    def _column_widths(self, formatted_rows):
        widths = [len(c) for c in self.columns]
        for row in formatted_rows:
            if isinstance(row, _Section):
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def _alignment(self, index, cell_samples):
        if self.align:
            return self.align[index]
        for sample in cell_samples:
            if isinstance(sample, (int, float)) and not isinstance(sample, bool):
                return "r"
        return "l"

    def render(self):
        """Render the table to a string."""
        formatted = [
            row if isinstance(row, _Section)
            else [self._format_cell(c) for c in row]
            for row in self.rows
        ]
        widths = self._column_widths(formatted)
        aligns = [
            self._alignment(
                i,
                [
                    row[i]
                    for row in self.rows
                    if not isinstance(row, _Section)
                ],
            )
            for i in range(len(self.columns))
        ]
        total_width = sum(widths) + 3 * (len(widths) - 1)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(self._render_row(self.columns, widths, ["l"] * len(widths)))
        lines.append("-" * total_width)
        for row in formatted:
            if isinstance(row, _Section):
                lines.append("-- %s %s" % (row.label, "-" * max(0, total_width - len(row.label) - 4)))
            else:
                lines.append(self._render_row(row, widths, aligns))
        return "\n".join(lines)

    @staticmethod
    def _render_row(cells, widths, aligns):
        parts = []
        for cell, width, align in zip(cells, widths, aligns):
            if align == "r":
                parts.append(cell.rjust(width))
            else:
                parts.append(cell.ljust(width))
        return "   ".join(parts).rstrip()

    def as_records(self):
        """Return rows as dictionaries keyed by column name."""
        records = []
        for row in self.rows:
            if isinstance(row, _Section):
                continue
            records.append(dict(zip(self.columns, row)))
        return records

    def __str__(self):
        return self.render()


class _Section:
    def __init__(self, label):
        self.label = label
