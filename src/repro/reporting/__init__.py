"""Rendering of paper-style tables and figure series as text.

Benchmarks use these helpers to print the same rows/series the paper
reports, so that a run's output can be compared side by side with the
published tables and figures.
"""

from repro.reporting.table import Table
from repro.reporting.figures import BarSeries, GroupedSeries, Heatmap
from repro.reporting.markdown import table_to_markdown

__all__ = [
    "Table",
    "BarSeries",
    "GroupedSeries",
    "Heatmap",
    "table_to_markdown",
]
