"""Shared utilities: deterministic RNG, identifiers, hashing, date helpers.

The whole library is deterministic: every stochastic component receives an
explicit seed (directly or via :func:`derive_seed`), so repeated runs of any
study or benchmark reproduce bit-for-bit identical results.
"""

import hashlib
import random

#: Default seed — the date of the AndroZoo snapshot used by the paper
#: (January 13, 2023).
DEFAULT_SEED = 20230113


def make_rng(seed):
    """Return a :class:`random.Random` seeded deterministically.

    ``seed`` may be an int, a string, or a tuple of both; non-int seeds are
    hashed into a stable 64-bit integer so that the same label always yields
    the same stream regardless of Python hash randomization.
    """
    if isinstance(seed, int):
        return random.Random(seed)
    return random.Random(stable_hash(seed))


def derive_seed(base_seed, *labels):
    """Derive a child seed from ``base_seed`` and a label path.

    Used to give each generated artifact (app, class, site, ...) its own
    independent, reproducible stream.
    """
    material = repr((base_seed,) + labels)
    return stable_hash(material)


def stable_hash(value, bits=64):
    """Hash ``value`` (via ``repr``) into a stable unsigned integer."""
    if not isinstance(value, (str, bytes)):
        value = repr(value)
    if isinstance(value, str):
        value = value.encode("utf-8")
    digest = hashlib.sha256(value).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def sha256_hex(data):
    """Return the hex SHA-256 of ``data`` (bytes)."""
    return hashlib.sha256(data).hexdigest()


def fingerprint_token(fingerprint):
    """Compact digest of an options/cache-key tuple, usable in filenames.

    Shared by the longitudinal RunStore (outcome filenames) and the
    telemetry store (run keys), so the same options always map to the
    same token everywhere.
    """
    material = repr(tuple(fingerprint)).encode("utf-8")
    return sha256_hex(material)[:8]


def weighted_choice(rng, weighted_items):
    """Pick one key from ``{item: weight}`` using ``rng``.

    Accepts a dict or a list of ``(item, weight)`` pairs. Raises
    ``ValueError`` on an empty or all-zero weighting.
    """
    if isinstance(weighted_items, dict):
        pairs = list(weighted_items.items())
    else:
        pairs = list(weighted_items)
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise ValueError("weighted_choice requires positive total weight")
    target = rng.uniform(0, total)
    cumulative = 0.0
    for item, weight in pairs:
        cumulative += weight
        if target <= cumulative:
            return item
    return pairs[-1][0]


def zipf_installs(rng, rank, scale=1.0, exponent=0.85, floor=100_000):
    """Sample an install count for an app of popularity ``rank`` (1-based).

    Play Store install counts follow a heavy-tailed distribution; the most
    popular apps in the paper's dataset have billions of downloads while the
    long tail sits near the 100K cutoff. The returned count is then snapped
    to Play-Store-style buckets (100K+, 500K+, 1M+, ...).
    """
    top = 10_000_000_000 * scale
    raw = top / (rank ** exponent)
    jitter = rng.uniform(0.6, 1.4)
    value = max(floor, raw * jitter)
    return snap_to_install_bucket(value)


_INSTALL_BUCKETS = (
    100_000, 500_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000,
    100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000,
)


def snap_to_install_bucket(value):
    """Snap an install count down to the nearest Play Store bucket."""
    snapped = _INSTALL_BUCKETS[0]
    for bucket in _INSTALL_BUCKETS:
        if value >= bucket:
            snapped = bucket
        else:
            break
    return snapped


def format_count(value):
    """Format a count the way the paper does: 27,397 / 8.4B / 289M / 146.5K."""
    return "{:,}".format(value)


def format_abbrev(value):
    """Abbreviate a number: 8.4B, 289M, 146.5K."""
    for magnitude, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if value >= magnitude:
            scaled = value / magnitude
            text = "%.1f" % scaled
            if text.endswith(".0"):
                text = text[:-2]
            return text + suffix
    return str(value)


def percent(part, whole):
    """Return ``part / whole`` as a percentage, 0.0 if ``whole`` is zero."""
    if not whole:
        return 0.0
    return 100.0 * part / whole
