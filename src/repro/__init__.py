"""repro — reproduction of "Whatcha Lookin' At: Investigating Third-Party
Web Content in Popular Android Apps" (IMC 2024).

The package implements the paper's two measurement pipelines end-to-end over
a calibrated synthetic Android ecosystem:

- :mod:`repro.core` — the public facade: :class:`~repro.core.StaticStudy`
  (the ~146.5K-app static pipeline) and :class:`~repro.core.DynamicStudy`
  (the top-1K semi-manual dynamic pipeline).
- Substrates: :mod:`repro.dex`, :mod:`repro.apk`, :mod:`repro.android`,
  :mod:`repro.javasrc`, :mod:`repro.decompiler`, :mod:`repro.callgraph`,
  :mod:`repro.playstore`, :mod:`repro.androzoo`, :mod:`repro.sdk`,
  :mod:`repro.corpus`, :mod:`repro.web`, :mod:`repro.netstack`,
  :mod:`repro.dynamic`, :mod:`repro.reporting`.

See DESIGN.md for the system inventory and per-experiment index.
"""

import logging as _logging

__version__ = "1.0.0"

# Library logging hygiene: importing repro never prints. Studies opt into
# log output with repro.obs.configure(), which honors REPRO_LOG_LEVEL.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.util import DEFAULT_SEED

__all__ = ["DEFAULT_SEED", "__version__"]
