"""Content-addressed per-class analysis facts.

The paper's central measurement is dominated by a small set of SDKs
embedded in thousands of apps, so the dex classes the Figure-1 hot path
decompiles and parses are massively duplicated across the corpus. This
module captures everything the per-APK analysis derives from *one class
in isolation* — generated Java source, the parsed-source WebView
``extends`` entries, and per-method invoke summaries — keyed by the
SHA-256 of the class's canonical encoding
(:func:`repro.dex.serialize_class`), so each distinct class is analyzed
once per corpus no matter how many APKs ship it.

What must stay per-APK (and therefore is *not* here): superclass-chain
resolution, entry-point discovery and reachability traversal, deep-link
exclusion — all of which depend on the whole DEX file or the manifest.

Determinism contract: :func:`facts_for_class` reads the ambient clock
exactly twice per class, hit or miss, so tick-clock span durations (and
hence same-seed metrics) are identical regardless of cache state, worker
count or chunk scheduling. Hit/miss *metrics* are never derived from
these helpers — the pipeline replays outcome digest lists in selection
order instead (DESIGN.md §10).
"""

from repro.callgraph.builder import class_method_summary
from repro.dex.binary import serialize_class
from repro.static_analysis.webview_usage import class_web_source_facts
from repro.util import sha256_hex


class ClassFacts:
    """Everything derivable from one class's canonical bytes.

    ``cost`` is the clock time the original computation took (the basis
    of the "estimated time saved" metric); ``canonical_size`` is the
    canonical encoding's byte length (the basis of "bytes deduplicated").
    Instances are picklable: they cross the process-pool boundary in
    worker ship-backs and land in the on-disk cache layer.
    """

    __slots__ = ("digest", "class_name", "source", "web_entries",
                 "method_summary", "canonical_size", "cost")

    def __init__(self, digest, class_name, source, web_entries,
                 method_summary, canonical_size, cost=0.0):
        self.digest = digest
        self.class_name = class_name
        self.source = source
        self.web_entries = web_entries
        self.method_summary = method_summary
        self.canonical_size = canonical_size
        self.cost = cost

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self):
        return "ClassFacts(%s, %s, %d bytes)" % (
            self.digest[:12], self.class_name, self.canonical_size
        )


class FactsRecorder:
    """Per-task record of which facts an analysis touched.

    ``digests`` is the ordered digest of every class in the APK (the
    replay stream for deterministic cache accounting); ``new`` holds the
    facts computed — not served from cache — during this task, which
    process-pool workers ship back so the corpus-level cache warms
    across chunks.
    """

    __slots__ = ("digests", "new")

    def __init__(self):
        self.digests = []
        self.new = {}


def compute_class_facts(dex_class, decompiler, digest=None, canonical=None):
    """Compute the facts for one class from scratch."""
    if canonical is None:
        canonical = serialize_class(dex_class)
    if digest is None:
        digest = sha256_hex(canonical)
    source = decompiler.decompile_class(dex_class)
    web_entries = class_web_source_facts(source) if source is not None else ()
    return ClassFacts(
        digest=digest,
        class_name=dex_class.name,
        source=source,
        web_entries=web_entries,
        method_summary=class_method_summary(dex_class),
        canonical_size=len(canonical),
    )


def facts_for_class(dex_class, decompiler, cache=None, recorder=None,
                    clock=None):
    """The facts for one class, served from ``cache`` when possible.

    Always digests the class (the lookup key must be recomputed per
    APK); decompilation, parsing and summarization are skipped on a hit.
    The ambient clock is read exactly twice whether or not the cache
    hits — see the module docstring for why.
    """
    start = clock() if clock is not None else 0.0
    canonical = serialize_class(dex_class)
    digest = sha256_hex(canonical)
    facts = cache.get(digest) if cache is not None else None
    computed = facts is None
    if computed:
        facts = compute_class_facts(dex_class, decompiler, digest=digest,
                                    canonical=canonical)
    end = clock() if clock is not None else 0.0
    if computed:
        facts.cost = end - start
        if cache is not None:
            cache.put(digest, facts)
        if recorder is not None:
            recorder.new[digest] = facts
    if recorder is not None:
        recorder.digests.append(digest)
    return facts
