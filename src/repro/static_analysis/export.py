"""Research-data export.

The paper offers to "share the code and data used to derive the results
... with researchers interested in reproducing and extending our work".
This module is that data release: per-app records, SDK attribution and
the full funnel as JSON or CSV, stable across runs at a fixed seed.
"""

import csv
import io
import json

from repro.static_analysis.results import RecordedCall


def app_record(analysis, attribution):
    """One app's exportable record."""
    return {
        "package": analysis.package,
        "category": str(analysis.category) if analysis.category else None,
        "installs": analysis.installs,
        "failed": analysis.failed,
        "uses_webview": analysis.uses_webview,
        "uses_customtabs": analysis.uses_customtabs,
        "webview_methods": sorted(analysis.webview_methods_used()),
        "webview_subclasses": sorted(analysis.webview_subclasses),
        "webview_sdks": sorted(
            sdk.name for sdk in attribution.webview.sdks
        ),
        "ct_sdks": sorted(
            sdk.name for sdk in attribution.customtabs.sdks
        ),
        "webview_first_party": attribution.webview.first_party,
        "unknown_packages": sorted(attribution.webview.unknown_packages),
        "obfuscated_packages": sorted(
            attribution.webview.obfuscated_packages
        ),
        "excluded_calls": sum(
            1 for call in analysis.calls if call.excluded
        ),
        "unreachable_calls": sum(
            1 for call in analysis.calls if not call.reachable
        ),
    }


def export_study_json(result, indent=None):
    """The whole study as a JSON document string."""
    records = []
    for analysis in result.successful():
        attribution = analysis.label_sdks(result.labeler)
        records.append(app_record(analysis, attribution))
    document = {
        "schema": "repro.whatcha-lookin-at/1",
        "funnel": result.funnel_dict(),
        "broken_apks": result.broken,
        "apps": records,
    }
    return json.dumps(document, indent=indent, sort_keys=True)


_CSV_COLUMNS = (
    "package", "category", "installs", "uses_webview", "uses_customtabs",
    "webview_methods", "webview_sdks", "ct_sdks", "webview_first_party",
    "excluded_calls", "unreachable_calls",
)


def export_study_csv(result):
    """Per-app CSV (list fields joined with '|')."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_COLUMNS)
    for analysis in result.successful():
        attribution = analysis.label_sdks(result.labeler)
        record = app_record(analysis, attribution)
        row = []
        for column in _CSV_COLUMNS:
            value = record[column]
            if isinstance(value, list):
                value = "|".join(value)
            row.append(value)
        writer.writerow(row)
    return buffer.getvalue()


def export_calls_csv(result, counting_only=True):
    """Call-level CSV: one row per recorded WebView/CT call."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("package", "kind", "method", "caller_class",
                     "receiver_class", "reachable", "excluded"))
    for analysis in result.successful():
        for call in analysis.calls:
            if counting_only and not call.counts:
                continue
            writer.writerow((
                analysis.package, call.kind, call.method,
                call.caller_class, call.receiver_class,
                call.reachable, call.excluded,
            ))
    return buffer.getvalue()


def load_study_json(text):
    """Parse a previously exported document (round-trip support)."""
    document = json.loads(text)
    if document.get("schema") != "repro.whatcha-lookin-at/1":
        raise ValueError("unrecognized export schema")
    return document
