"""Deep-link (BROWSABLE) activity filtering — Section 3.1.3.

"To filter out app activities that are likely to host first-party web
content, we identified activities that can handle deep links to app content
and excluded them from further consideration": ``exported`` activities with
an intent filter of category BROWSABLE accepting http/https data.
"""


def deep_link_class_names(manifest):
    """The set of activity class names the pipeline must exclude."""
    return {activity.name for activity in manifest.deep_link_activities()}


def is_excluded_caller(caller_class, excluded_names):
    """True if a calling class belongs to an excluded deep-link activity.

    Inner classes (``Outer$Inner``) of an excluded activity are excluded
    with it, since they share the activity's content-hosting role.
    """
    if caller_class in excluded_names:
        return True
    outer = caller_class.split("$", 1)[0]
    return outer in excluded_names
