"""The paper's primary contribution: the large-scale static pipeline.

Implements Figure 1 end-to-end: AndroZoo listing -> Play metadata filter ->
APK download -> decompilation -> WebView-subclass extraction -> call-graph
construction -> entry-point traversal -> WebView/CT call recording ->
deep-link filtering -> SDK labelling -> ecosystem aggregation.
"""

from repro.static_analysis.results import (
    RecordedCall,
    AppAnalysis,
    StudyResult,
)
from repro.static_analysis.pipeline import (
    PipelineOptions,
    StaticAnalysisPipeline,
    analyze_apk_bytes,
)
from repro.static_analysis.webview_usage import find_webview_subclasses
from repro.static_analysis.deeplinks import deep_link_class_names
from repro.static_analysis import report
from repro.static_analysis import nutrition

__all__ = [
    "RecordedCall",
    "AppAnalysis",
    "StudyResult",
    "PipelineOptions",
    "StaticAnalysisPipeline",
    "analyze_apk_bytes",
    "find_webview_subclasses",
    "deep_link_class_names",
    "report",
    "nutrition",
]
