"""Result records for the static pipeline."""

from repro.android.api import (
    WEBVIEW_CONTENT_METHODS,
    CT_LAUNCH_METHOD,
)
from repro.sdk.labeling import PackageLabel


class RecordedCall:
    """One WebView API call or CT initialization found in an app.

    ``reachable`` reflects entry-point traversal; ``excluded`` the
    deep-link filter. Only reachable, non-excluded calls count toward the
    paper's usage statistics — both raw flags are retained so ablation
    benchmarks can re-aggregate without re-analysis.
    """

    __slots__ = ("kind", "method", "caller_class", "receiver_class",
                 "reachable", "excluded")

    WEBVIEW = "webview"
    CUSTOMTABS = "customtabs"

    def __init__(self, kind, method, caller_class, receiver_class,
                 reachable=True, excluded=False):
        self.kind = kind
        self.method = method
        self.caller_class = caller_class
        self.receiver_class = receiver_class
        self.reachable = reachable
        self.excluded = excluded

    @property
    def caller_package(self):
        if "." not in self.caller_class:
            return ""
        return self.caller_class.rsplit(".", 1)[0]

    @property
    def counts(self):
        """True if this call contributes to usage statistics."""
        return self.reachable and not self.excluded

    @property
    def is_content_call(self):
        """True for calls that populate content (used for SDK labelling)."""
        if self.kind == RecordedCall.WEBVIEW:
            return self.method in WEBVIEW_CONTENT_METHODS
        return self.method == CT_LAUNCH_METHOD

    def __repr__(self):
        return "RecordedCall(%s.%s from %s%s%s)" % (
            self.kind, self.method, self.caller_class,
            "" if self.reachable else " [unreachable]",
            " [excluded]" if self.excluded else "",
        )


class AppAnalysis:
    """Per-app output of the static pipeline."""

    def __init__(self, package, category=None, installs=0):
        self.package = package
        self.category = category
        self.installs = installs
        #: The analyzed APK's sha256, attached at aggregation time so
        #: persistent stores can key per-app outcomes by content.
        self.sha256 = ""
        self.calls = []
        self.webview_subclasses = set()
        self.class_count = 0
        self.failed = False
        self.failure_reason = None

    # -- call recording ----------------------------------------------------

    def record(self, call):
        self.calls.append(call)

    def counting_calls(self, kind=None):
        """Calls that survive reachability + deep-link filtering."""
        return [
            call for call in self.calls
            if call.counts and (kind is None or call.kind == kind)
        ]

    # -- usage properties -----------------------------------------------------

    @property
    def uses_webview(self):
        return any(
            call.kind == RecordedCall.WEBVIEW
            for call in self.counting_calls()
        )

    @property
    def uses_customtabs(self):
        return any(
            call.kind == RecordedCall.CUSTOMTABS
            for call in self.counting_calls()
        )

    @property
    def uses_both(self):
        return self.uses_webview and self.uses_customtabs

    def webview_methods_used(self):
        """Distinct WebView API methods called (Table 7 rows)."""
        return {
            call.method
            for call in self.counting_calls(RecordedCall.WEBVIEW)
        }

    # -- SDK attribution -----------------------------------------------------

    def invoking_packages(self, kind):
        """Java packages whose classes make content-populating calls."""
        packages = set()
        for call in self.counting_calls(kind):
            if not call.is_content_call:
                continue
            if call.caller_package:
                packages.add(call.caller_package)
        return packages

    def label_sdks(self, labeler):
        """Label invoking packages; returns an :class:`SdkAttribution`."""
        attribution = SdkAttribution()
        for kind, bucket in (
            (RecordedCall.WEBVIEW, attribution.webview),
            (RecordedCall.CUSTOMTABS, attribution.customtabs),
        ):
            for package in self.invoking_packages(kind):
                if package == self.package or package.startswith(
                    self.package + "."
                ):
                    bucket.first_party = True
                    continue
                label = labeler.label(package)
                if label.status == PackageLabel.KNOWN:
                    bucket.sdks.add(label.sdk)
                elif label.status == PackageLabel.OBFUSCATED:
                    bucket.obfuscated_packages.add(package)
                    if label.sdk is not None:
                        bucket.sdks.add(label.sdk)
                elif label.status == PackageLabel.EXCLUDED:
                    bucket.excluded_packages.add(package)
                else:
                    bucket.unknown_packages.add(package)
        return attribution

    def __repr__(self):
        return "AppAnalysis(%s, wv=%s, ct=%s, %d calls)" % (
            self.package, self.uses_webview, self.uses_customtabs,
            len(self.calls),
        )


class _MechanismAttribution:
    def __init__(self):
        self.sdks = set()
        self.first_party = False
        self.unknown_packages = set()
        self.obfuscated_packages = set()
        self.excluded_packages = set()

    @property
    def uses_top_sdks(self):
        return bool(self.sdks)


class SdkAttribution:
    """SDK labelling outcome for one app, split by mechanism."""

    def __init__(self):
        self.webview = _MechanismAttribution()
        self.customtabs = _MechanismAttribution()


class OutcomeRecord:
    """One APK's completed analysis outcome, as stored and carried.

    This is the value the two result stores share — the in-memory
    :class:`~repro.exec.AnalysisCache` tier and the persistent
    :class:`~repro.longitudinal.RunStore` — keyed by ``(sha256,
    options fingerprint)`` in both. ``error`` is a drop-taxonomy slug
    (None on success). Analysis is a pure function of the APK bytes and
    the options, so replaying a stored record into a
    :class:`StudyResult` is byte-identical to re-running the analysis.
    """

    __slots__ = ("analysis", "error", "message")

    def __init__(self, analysis, error=None, message=None):
        self.analysis = analysis
        self.error = error
        self.message = message

    @property
    def failed(self):
        return self.error is not None

    def __repr__(self):
        return "OutcomeRecord(%s%s)" % (
            self.analysis.package,
            ", error=%s" % self.error if self.error else "",
        )


class StudyResult:
    """Whole-study output: the Table 2 funnel plus per-app analyses."""

    def __init__(self, labeler):
        self.labeler = labeler
        # Table 2 funnel counters.
        self.androzoo_play_apps = 0
        self.found_on_play = 0
        self.popular = 0
        self.selected = 0
        self.analyzed = 0
        self.broken = 0
        self.analyses = []

    def add(self, analysis):
        self.analyses.append(analysis)

    # -- aggregate views -----------------------------------------------------

    def successful(self):
        return [a for a in self.analyses if not a.failed]

    def webview_apps(self):
        return [a for a in self.successful() if a.uses_webview]

    def customtabs_apps(self):
        return [a for a in self.successful() if a.uses_customtabs]

    def both_apps(self):
        return [a for a in self.successful() if a.uses_both]

    def attribution_for(self, analysis):
        return analysis.label_sdks(self.labeler)

    def funnel_dict(self):
        return {
            "androzoo_play_apps": self.androzoo_play_apps,
            "found_on_play": self.found_on_play,
            "with_100k_downloads": self.popular,
            "updated_after_2021": self.selected,
            "successfully_analyzed": self.analyzed,
        }

    def __repr__(self):
        return "StudyResult(%d analyzed, %d webview, %d ct)" % (
            self.analyzed, len(self.webview_apps()),
            len(self.customtabs_apps()),
        )
