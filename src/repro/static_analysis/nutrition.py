"""Privacy nutrition labels for third-party web content (Section 5).

The paper's closing proposal: "Future research could consider including
WebView usage for third-party content as a metric in the 'privacy
nutrition labels' displayed on the app store." This module derives such a
label from a static analysis result — mechanisms used, attack surface
exposed (JS bridges / injection capability), and the SDK use cases
involved — and grades the app's web-content hygiene.
"""

from repro.sdk.catalog import SdkCategory
from repro.static_analysis.results import RecordedCall

#: SDK types whose WebView use handles sensitive data (paper's takeaways).
SENSITIVE_TYPES = (
    SdkCategory.PAYMENTS,
    SdkCategory.AUTHENTICATION,
    SdkCategory.SOCIAL,
)


class NutritionLabel:
    """One app's third-party-web-content label."""

    def __init__(self, package):
        self.package = package
        self.displays_web_content = False
        self.uses_webview = False
        self.uses_customtabs = False
        self.exposes_js_bridge = False
        self.can_inject_js = False
        self.sensitive_webview_types = []
        self.webview_sdk_types = []
        self.ct_sdk_types = []
        self.first_party_only = False

    @property
    def grade(self):
        """A-F hygiene grade.

        A: no embedded web content, or CTs only.
        B: WebView for first-party content only (the intended use).
        C: third-party WebView content, no injection surface.
        D: injection surface (JS bridge or injected JS) exposed.
        F: sensitive use cases (payments/auth/social login) on WebViews
           with an injection surface.
        """
        if not self.displays_web_content:
            return "A"
        if not self.uses_webview:
            return "A"
        if self.first_party_only:
            return "B"
        surface = self.exposes_js_bridge or self.can_inject_js
        if self.sensitive_webview_types and surface:
            return "F"
        if surface:
            return "D"
        return "C"

    def disclosure_lines(self):
        """The store-facing disclosure text."""
        lines = []
        if not self.displays_web_content:
            lines.append("This app does not embed web content.")
            return lines
        if self.uses_customtabs:
            lines.append(
                "Opens web content in your browser (Custom Tabs): pages "
                "are isolated from the app."
            )
        if self.uses_webview:
            if self.first_party_only:
                lines.append(
                    "Embeds the developer's own web content in a WebView."
                )
            else:
                lines.append(
                    "Displays third-party web content inside the app "
                    "(WebView): the app can observe these pages."
                )
        if self.exposes_js_bridge:
            lines.append(
                "Exposes app code to web pages via a JavaScript bridge."
            )
        if self.can_inject_js:
            lines.append(
                "Can run its own JavaScript inside web pages you visit."
            )
        for sdk_type in self.sensitive_webview_types:
            lines.append(
                "Uses a %s integration over WebViews — sensitive data may "
                "transit an app-controlled page." % sdk_type.value.lower()
            )
        return lines

    def __repr__(self):
        return "NutritionLabel(%s, grade=%s)" % (self.package, self.grade)


def build_label(analysis, attribution):
    """Derive a label from an AppAnalysis + its SdkAttribution."""
    label = NutritionLabel(analysis.package)
    label.uses_webview = analysis.uses_webview
    label.uses_customtabs = analysis.uses_customtabs
    label.displays_web_content = label.uses_webview or label.uses_customtabs

    methods = analysis.webview_methods_used()
    label.exposes_js_bridge = "addJavascriptInterface" in methods
    label.can_inject_js = "evaluateJavascript" in methods

    label.webview_sdk_types = sorted(
        {sdk.category for sdk in attribution.webview.sdks},
        key=lambda c: c.value,
    )
    label.ct_sdk_types = sorted(
        {sdk.category for sdk in attribution.customtabs.sdks},
        key=lambda c: c.value,
    )
    label.sensitive_webview_types = [
        c for c in label.webview_sdk_types if c in SENSITIVE_TYPES
    ]
    label.first_party_only = (
        label.uses_webview
        and attribution.webview.first_party
        and not attribution.webview.sdks
        and not attribution.webview.unknown_packages
        and not attribution.webview.obfuscated_packages
    )
    return label


def label_study(result, limit=None):
    """Label every successfully analyzed app in a StudyResult."""
    labels = []
    for analysis in result.successful()[:limit]:
        attribution = analysis.label_sdks(result.labeler)
        labels.append(build_label(analysis, attribution))
    return labels


def grade_distribution(labels):
    """Grade -> count over a set of labels."""
    distribution = {grade: 0 for grade in "ABCDF"}
    for label in labels:
        distribution[label.grade] += 1
    return distribution
