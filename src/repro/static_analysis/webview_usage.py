"""Custom WebView subclass detection over decompiled sources (3.1.2).

The paper decompiles each APK and parses every source file that imports
``android.webkit.WebView``, extracting classes that extend it. Calls to
those subclasses' inherited ``loadUrl``/... must count as WebView usage,
which bytecode alone cannot decide when the subclass hierarchy is only
visible in source — this is the pipeline step that makes decompilation
load-bearing.

The work splits along the class-cache seam: the screen + parse + import
resolution for one source file is a pure function of its text
(:func:`class_web_source_facts`, memoized corpus-wide as part of each
class's facts), while the transitive subclass closure depends on every
class in the app and stays per-APK
(:func:`webview_subclasses_from_entries`).
"""

from repro.android.api import WEBVIEW_CLASS
from repro.javasrc.parser import try_parse_java


def class_web_source_facts(source):
    """``(qualified_name, resolved_extends)`` entries for one source file.

    Phase (1)-(2) of the paper's approach for a single decompiled class:
    a cheap textual screen for files importing/naming
    ``android.webkit.WebView``, then a full parse with import-resolved
    ``extends``. Screened-out files and parse failures yield no entries
    (javalang failures were skipped the same way). Pure in the source
    text, so the result is cacheable under the class's content digest.
    """
    if WEBVIEW_CLASS.rsplit(".", 1)[0] not in source and "WebView" not in source:
        return ()
    unit = try_parse_java(source)
    if unit is None:
        return ()
    entries = []
    for class_decl in _iter_class_decls(unit):
        if class_decl.extends is None:
            continue
        entries.append((
            _qualified_name(unit, class_decl),
            unit.resolve_type(class_decl.extends),
        ))
    return tuple(entries)


def webview_subclasses_from_entries(entries):
    """Resolve the app-wide subclass set from per-class extends entries.

    Transitive subclasses (A extends B extends WebView) are resolved
    iteratively — this closure needs every class in the app, which is
    exactly why it stays per-APK while the entries themselves are
    memoized per class.
    """
    direct = set()
    extends_map = {}
    for qualified, resolved in entries:
        extends_map[qualified] = resolved
        if resolved == WEBVIEW_CLASS:
            direct.add(qualified)

    subclasses = set(direct)
    changed = True
    while changed:
        changed = False
        for qualified, parent in extends_map.items():
            if parent in subclasses and qualified not in subclasses:
                subclasses.add(qualified)
                changed = True
    return subclasses


def find_webview_subclasses(decompiled_app):
    """Return the qualified names of classes extending WebView."""
    entries = []
    for source in decompiled_app.sources.values():
        entries.extend(class_web_source_facts(source))
    return webview_subclasses_from_entries(entries)


def _iter_class_decls(unit):
    stack = list(unit.types)
    while stack:
        class_decl = stack.pop()
        yield class_decl
        stack.extend(class_decl.inner_classes)


def _qualified_name(unit, class_decl):
    if unit.package:
        return "%s.%s" % (unit.package, class_decl.name)
    return class_decl.name
