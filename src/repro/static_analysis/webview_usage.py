"""Custom WebView subclass detection over decompiled sources (3.1.2).

The paper decompiles each APK and parses every source file that imports
``android.webkit.WebView``, extracting classes that extend it. Calls to
those subclasses' inherited ``loadUrl``/... must count as WebView usage,
which bytecode alone cannot decide when the subclass hierarchy is only
visible in source — this is the pipeline step that makes decompilation
load-bearing.
"""

from repro.android.api import WEBVIEW_CLASS
from repro.errors import JavaSyntaxError
from repro.javasrc.parser import parse_java


def find_webview_subclasses(decompiled_app):
    """Return the qualified names of classes extending WebView.

    Follows the paper's two-phase approach: (1) cheap textual screen for
    files importing/naming ``android.webkit.WebView``; (2) full parse of
    the screened files and import-resolved ``extends`` checks. Transitive
    subclasses (A extends B extends WebView) are resolved iteratively.
    Files that fail to parse are skipped, as javalang failures were.
    """
    direct = set()
    extends_map = {}
    for class_name, source in decompiled_app.sources.items():
        if WEBVIEW_CLASS.rsplit(".", 1)[0] not in source and "WebView" not in source:
            continue
        try:
            unit = parse_java(source)
        except JavaSyntaxError:
            continue
        for class_decl in _iter_class_decls(unit):
            qualified = _qualified_name(unit, class_decl)
            if class_decl.extends is None:
                continue
            resolved = unit.resolve_type(class_decl.extends)
            extends_map[qualified] = resolved
            if resolved == WEBVIEW_CLASS:
                direct.add(qualified)

    # Transitive closure: classes extending a detected subclass.
    subclasses = set(direct)
    changed = True
    while changed:
        changed = False
        for qualified, parent in extends_map.items():
            if parent in subclasses and qualified not in subclasses:
                subclasses.add(qualified)
                changed = True
    return subclasses


def _iter_class_decls(unit):
    stack = list(unit.types)
    while stack:
        class_decl = stack.pop()
        yield class_decl
        stack.extend(class_decl.inner_classes)


def _qualified_name(unit, class_decl):
    if unit.package:
        return "%s.%s" % (unit.package, class_decl.name)
    return class_decl.name
