"""The Figure 1 static-analysis pipeline, end to end.

:func:`analyze_apk_bytes` performs steps (3)-(5) for a single APK:
decompile, find WebView subclasses in parsed source, build the call graph,
traverse from all entry points, and record every WebView/CT call with
reachability and deep-link-exclusion flags.

:class:`StaticAnalysisPipeline` performs steps (1)-(2) around it: list the
AndroZoo snapshot, fetch Play metadata, apply the 100K-downloads and
updated-after-2021 filters, download APKs, and aggregate a
:class:`~repro.static_analysis.results.StudyResult`.
"""

from repro.android import api
from repro.callgraph.builder import build_call_graph
from repro.callgraph.entrypoints import entry_point_methods
from repro.decompiler.jadx import Decompiler
from repro.dex.model import MethodRef
from repro.errors import BrokenApkError, error_slug
from repro.obs import (
    APPS_ANALYZED_METRIC,
    APPS_LISTED_METRIC,
    DROPS_METRIC,
    bind_context,
    default_obs,
    get_logger,
    trace_span,
)
from repro.sdk.labeling import SdkLabeler
from repro.static_analysis.deeplinks import (
    deep_link_class_names,
    is_excluded_caller,
)
from repro.static_analysis.results import (
    AppAnalysis,
    RecordedCall,
    StudyResult,
)
from repro.static_analysis.webview_usage import find_webview_subclasses


class PipelineOptions:
    """Feature switches, used by the ablation benchmarks.

    All three default to the paper's methodology. Disabling
    ``entry_point_traversal`` treats every recorded call as reachable
    (naive whole-code scan); disabling ``deep_link_filter`` keeps
    first-party deep-link activities in the counts; disabling
    ``subclass_detection`` misses calls made through custom WebView
    subclasses.
    """

    def __init__(self, entry_point_traversal=True, deep_link_filter=True,
                 subclass_detection=True):
        self.entry_point_traversal = entry_point_traversal
        self.deep_link_filter = deep_link_filter
        self.subclass_detection = subclass_detection


def _is_webview_call(ref, subclasses):
    """A tracked WebView method on the framework class or a subclass."""
    if ref.method_name not in api.WEBVIEW_TRACKED_METHODS:
        return False
    return ref.class_name == api.WEBVIEW_CLASS or ref.class_name in subclasses


def analyze_apk_bytes(data, options=None, decompiler=None, category=None,
                      installs=0):
    """Run the per-APK analysis (Figure 1 steps 3-5) on APK bytes.

    Raises :class:`~repro.errors.BrokenApkError` for unanalyzable APKs.
    """
    options = options or PipelineOptions()
    decompiler = decompiler or Decompiler()

    with trace_span("decompile"):
        decompiled = decompiler.decompile_bytes(data)
        analysis = AppAnalysis(decompiled.package, category=category,
                               installs=installs)
        analysis.class_count = len(decompiled.sources)

        if options.subclass_detection:
            analysis.webview_subclasses = find_webview_subclasses(decompiled)

    manifest = decompiled.manifest
    with trace_span("callgraph", package=decompiled.package):
        dex = _read_dex(data)
        graph = build_call_graph(dex)

    with trace_span("traverse", package=decompiled.package):
        reachable = None
        if options.entry_point_traversal:
            roots = [
                MethodRef(dex_class.name, method.name, method.descriptor)
                for dex_class, method in entry_point_methods(dex, manifest)
            ]
            reachable = graph.reachable_from(roots)

        excluded_names = (
            deep_link_class_names(manifest) if options.deep_link_filter
            else set()
        )

        for dex_class, method in dex.iter_methods():
            caller = MethodRef(dex_class.name, method.name, method.descriptor)
            caller_reachable = True
            if reachable is not None:
                caller_reachable = caller in reachable
            caller_excluded = is_excluded_caller(dex_class.name,
                                                 excluded_names)
            for ref in method.invoked_refs():
                if _is_webview_call(ref, analysis.webview_subclasses):
                    analysis.record(
                        RecordedCall(
                            RecordedCall.WEBVIEW, ref.method_name,
                            dex_class.name, ref.class_name,
                            reachable=caller_reachable,
                            excluded=caller_excluded,
                        )
                    )
                elif api.is_customtabs_init(ref):
                    analysis.record(
                        RecordedCall(
                            RecordedCall.CUSTOMTABS, ref.method_name,
                            dex_class.name, ref.class_name,
                            reachable=caller_reachable,
                            excluded=caller_excluded,
                        )
                    )
    return analysis


def _read_dex(data):
    from repro.apk.container import read_apk

    return read_apk(data).dex


#: Drop-reason slugs for the metadata filters (steps 1-2). Pipeline-error
#: drops use the :func:`repro.errors.error_slug` taxonomy instead.
DROP_NOT_PROCESSED = "not_processed"
DROP_BELOW_MIN_INSTALLS = "below_min_installs"
DROP_UPDATED_BEFORE_CUTOFF = "updated_before_cutoff"


class StaticAnalysisPipeline:
    """The corpus-level study runner (Figure 1 steps 1-2 + aggregation)."""

    def __init__(self, corpus, options=None, labeler=None, obs=None):
        self.corpus = corpus
        self.options = options or PipelineOptions()
        self.labeler = labeler or SdkLabeler(corpus.catalog)
        self.decompiler = Decompiler()
        self.obs = obs if obs is not None else default_obs()
        self.log = get_logger("static.pipeline")
        self._drops = self.obs.counter(
            DROPS_METRIC,
            "Apps dropped before successful analysis, by reason.",
            ("reason",),
        )
        self._listed = self.obs.counter(
            APPS_LISTED_METRIC,
            "Play-market apps listed in the AndroZoo snapshot.",
        )
        self._analyzed = self.obs.counter(
            APPS_ANALYZED_METRIC, "Apps successfully analyzed.",
        )

    def _drop(self, reason, count=1):
        if count:
            self._drops.labels(reason=reason).inc(count)

    def select_apps(self):
        """Steps (1)-(2): snapshot listing + metadata filters.

        Returns (selected_rows, funnel_counts) where each selected row is
        an (IndexRow, AppListing) pair.
        """
        from repro.androzoo.repository import PLAY_MARKET
        from repro.errors import AppNotFoundError
        from repro.playstore.store import PlayScraperClient

        config = self.corpus.config
        with self.obs.span("list", snapshot=str(config.snapshot_date)):
            snapshot = self.corpus.repository.snapshot(config.snapshot_date)
            packages = snapshot.packages(market=PLAY_MARKET)
        self._listed.inc(len(packages))
        self.log.info("snapshot_listed", snapshot=str(config.snapshot_date),
                      packages=len(packages))
        scraper = PlayScraperClient(self.corpus.store)

        funnel = {
            "androzoo_play_apps": len(packages),
            "found_on_play": 0,
            "with_100k_downloads": 0,
            "updated_after_2021": 0,
        }
        selected = []
        with self.obs.span("filter"):
            for package in packages:
                listing = scraper.try_app_listing(package)
                if listing is None:
                    self._drop(error_slug(AppNotFoundError))
                    continue
                funnel["found_on_play"] += 1
                if listing.installs < config.min_installs:
                    self._drop(DROP_BELOW_MIN_INSTALLS)
                    continue
                funnel["with_100k_downloads"] += 1
                if listing.updated < config.update_cutoff:
                    self._drop(DROP_UPDATED_BEFORE_CUTOFF)
                    continue
                funnel["updated_after_2021"] += 1
                row = snapshot.latest_version(package)
                selected.append((row, listing))
        self.log.info("funnel_selected", **funnel)
        return selected, funnel

    def run(self, max_apps=None, progress=None):
        """Run the full study; returns a :class:`StudyResult`."""
        with self.obs.activate(), \
                bind_context(stage="static", snapshot=str(
                    self.corpus.config.snapshot_date)), \
                self.obs.span("run") as run_span:
            return self._run(max_apps, progress, run_span)

    def _run(self, max_apps, progress, run_span):
        selected, funnel = self.select_apps()
        if max_apps is not None and len(selected) > max_apps:
            self._drop(DROP_NOT_PROCESSED, len(selected) - max_apps)
            selected = selected[:max_apps]

        result = StudyResult(self.labeler)
        result.androzoo_play_apps = funnel["androzoo_play_apps"]
        result.found_on_play = funnel["found_on_play"]
        result.popular = funnel["with_100k_downloads"]
        result.selected = funnel["updated_after_2021"]

        for position, (row, listing) in enumerate(selected):
            with bind_context(package=row.package), \
                    self.obs.span("analyze_app", package=row.package):
                with self.obs.span("download"):
                    data = self.corpus.repository.download(row.sha256)
                try:
                    analysis = analyze_apk_bytes(
                        data,
                        options=self.options,
                        decompiler=self.decompiler,
                        category=listing.category,
                        installs=listing.installs,
                    )
                except BrokenApkError as exc:
                    analysis = AppAnalysis(row.package,
                                           category=listing.category,
                                           installs=listing.installs)
                    analysis.failed = True
                    analysis.failure_reason = str(exc)
                    result.broken += 1
                    self._drop(error_slug(exc))
                    self.log.warning("broken_apk", sha256=row.sha256,
                                     reason=str(exc))
                else:
                    result.analyzed += 1
                    self._analyzed.inc()
                    self.log.debug("analyzed", calls=len(analysis.calls),
                                   classes=analysis.class_count)
                result.add(analysis)
            if progress is not None and (position + 1) % 200 == 0:
                progress(position + 1, len(selected))

        run_span.set_attribute("analyzed", result.analyzed)
        run_span.set_attribute("broken", result.broken)
        self.log.info("run_complete", analyzed=result.analyzed,
                      broken=result.broken, selected=len(selected))
        return result
