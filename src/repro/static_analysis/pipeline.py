"""The Figure 1 static-analysis pipeline, end to end.

:func:`analyze_apk_bytes` performs steps (3)-(5) for a single APK:
decompile, find WebView subclasses in parsed source, build the call graph,
traverse from all entry points, and record every WebView/CT call with
reachability and deep-link-exclusion flags.

:class:`StaticAnalysisPipeline` performs steps (1)-(2) around it: list the
AndroZoo snapshot, fetch Play metadata, apply the 100K-downloads and
updated-after-2021 filters, download APKs, and aggregate a
:class:`~repro.static_analysis.results.StudyResult`.

Per-app analysis is sharded across a :mod:`repro.exec` worker pool —
process-backed when ``max_workers > 1``, in-process otherwise. Per-app
failures (a broken APK, a failed download, any :class:`ReproError` from
analysis) are isolated into the drop taxonomy instead of aborting the
run, results are aggregated in selection order so same-seed studies are
byte-identical at any worker count, and outcomes are memoized in a
two-tier :class:`~repro.exec.AnalysisCache`: whole-APK outcomes keyed by
``(sha256, options)`` on top, content-addressed per-class facts below.

The class tier is what makes corpus-scale analysis cheap: the paper's
SDK-concentration finding means the same class bytes recur across
thousands of APKs, so each app's analysis composes memoized per-class
facts (generated source, parsed ``extends`` entries, invoke summaries)
with app-local resolution (superclass chains, entry-point traversal).
Process-pool workers ship newly computed facts back with their results
so the corpus-level cache warms across chunks. Results are byte-identical
with the class cache on or off, at any worker count and backend — and
class-cache metrics are accounted by a deterministic selection-order
replay, never from scheduling-dependent worker-local counts.
"""

import contextlib
import datetime
import functools
import time

from repro.android import api
from repro.apk.container import read_apk
from repro.callgraph.builder import build_call_graph
from repro.callgraph.entrypoints import entry_point_methods
from repro.decompiler.jadx import Decompiler
from repro.dex.model import MethodRef
from repro.errors import ReproError, RepositoryError, error_slug
from repro.exec import (
    AnalysisCache,
    BACKEND_PROCESS,
    ClassFactsCache,
    ExecConfig,
    OrderedFlush,
    StreamScheduler,
    StreamStage,
    WORKER_LOST_SLUG,
    chain_results,
    make_pool,
    simulate_schedule,
    stage_schedule_view,
)
from repro.obs import (
    APPS_ANALYZED_METRIC,
    APPS_LISTED_METRIC,
    DROPS_METRIC,
    EXEC_BACKEND_METRIC,
    EXEC_CACHE_EVICTIONS_METRIC,
    EXEC_CACHE_HITS_METRIC,
    EXEC_CACHE_MISSES_METRIC,
    EXEC_CHUNK_SIZE_METRIC,
    EXEC_CHUNKS_REPAIRED_METRIC,
    EXEC_CLASS_BYTES_DEDUPED_METRIC,
    EXEC_CLASS_CACHE_HITS_METRIC,
    EXEC_CLASS_CACHE_MISSES_METRIC,
    EXEC_CLASS_TIME_SAVED_METRIC,
    EXEC_CRITICAL_PATH_METRIC,
    EXEC_QUEUE_DEPTH_METRIC,
    EXEC_STEALS_METRIC,
    EXEC_TASKS_METRIC,
    EXEC_TASKS_QUARANTINED_METRIC,
    EXEC_WORKER_BUSY_METRIC,
    EXEC_WORKERS_METRIC,
    Span,
    TickClock,
    Tracer,
    bind_context,
    current_tracer,
    default_obs,
    get_logger,
    trace_span,
    use_tracer,
)
from repro.sdk.labeling import SdkLabeler
from repro.static_analysis.classfacts import FactsRecorder, facts_for_class
from repro.static_analysis.deeplinks import (
    deep_link_class_names,
    is_excluded_caller,
)
from repro.static_analysis.results import (
    AppAnalysis,
    OutcomeRecord,
    RecordedCall,
    StudyResult,
)
from repro.static_analysis.webview_usage import webview_subclasses_from_entries


class PipelineOptions:
    """Feature switches, used by the ablation benchmarks.

    All three default to the paper's methodology. Disabling
    ``entry_point_traversal`` treats every recorded call as reachable
    (naive whole-code scan); disabling ``deep_link_filter`` keeps
    first-party deep-link activities in the counts; disabling
    ``subclass_detection`` misses calls made through custom WebView
    subclasses.
    """

    def __init__(self, entry_point_traversal=True, deep_link_filter=True,
                 subclass_detection=True):
        self.entry_point_traversal = entry_point_traversal
        self.deep_link_filter = deep_link_filter
        self.subclass_detection = subclass_detection

    def cache_key(self):
        """Fingerprint for the analysis-result cache (:mod:`repro.exec`)."""
        return (self.entry_point_traversal, self.deep_link_filter,
                self.subclass_detection)


def _is_webview_call(ref, subclasses):
    """A tracked WebView method on the framework class or a subclass."""
    if ref.method_name not in api.WEBVIEW_TRACKED_METHODS:
        return False
    return ref.class_name == api.WEBVIEW_CLASS or ref.class_name in subclasses


def analyze_apk_bytes(data, options=None, decompiler=None, category=None,
                      installs=0, facts_cache=None, recorder=None):
    """Run the per-APK analysis (Figure 1 steps 3-5) on APK bytes.

    Raises :class:`~repro.errors.BrokenApkError` for unanalyzable APKs.

    The APK is parsed once; per-class work (decompile, parse, invoke
    summarization) flows through :func:`facts_for_class`, served from
    ``facts_cache`` by content digest when one is given. ``recorder``
    collects the app's ordered digest stream plus any newly computed
    facts, for worker ship-back and deterministic cache accounting.
    Results are byte-identical with or without a cache.
    """
    options = options or PipelineOptions()
    decompiler = decompiler or Decompiler()
    clock = current_tracer().clock

    with trace_span("decompile"):
        apk = read_apk(data)
        decompiler.apks_attempted += 1
        facts = [
            facts_for_class(dex_class, decompiler, cache=facts_cache,
                            recorder=recorder, clock=clock)
            for dex_class in apk.dex.classes
        ]
        decompiler.apks_succeeded += 1
        analysis = AppAnalysis(apk.package, category=category,
                               installs=installs)
        analysis.class_count = sum(
            1 for class_facts in facts if class_facts.source is not None
        )
        if options.subclass_detection:
            analysis.webview_subclasses = webview_subclasses_from_entries(
                [entry for class_facts in facts
                 for entry in class_facts.web_entries]
            )

    dex = apk.dex
    manifest = apk.manifest
    with trace_span("callgraph", package=apk.package):
        graph = build_call_graph(dex, method_summaries={
            class_facts.class_name: class_facts.method_summary
            for class_facts in facts
        })

    with trace_span("traverse", package=apk.package):
        reachable = None
        if options.entry_point_traversal:
            roots = [
                MethodRef(dex_class.name, method.name, method.descriptor)
                for dex_class, method in entry_point_methods(dex, manifest)
            ]
            reachable = graph.reachable_from(roots)

        excluded_names = (
            deep_link_class_names(manifest) if options.deep_link_filter
            else set()
        )

        for class_facts in facts:
            caller_excluded = is_excluded_caller(class_facts.class_name,
                                                 excluded_names)
            for method_name, descriptor, invokes in class_facts.method_summary:
                caller = MethodRef(class_facts.class_name, method_name,
                                   descriptor)
                caller_reachable = True
                if reachable is not None:
                    caller_reachable = caller in reachable
                for target in invokes:
                    ref = MethodRef(*target)
                    if _is_webview_call(ref, analysis.webview_subclasses):
                        analysis.record(
                            RecordedCall(
                                RecordedCall.WEBVIEW, ref.method_name,
                                class_facts.class_name, ref.class_name,
                                reachable=caller_reachable,
                                excluded=caller_excluded,
                            )
                        )
                    elif api.is_customtabs_init(ref):
                        analysis.record(
                            RecordedCall(
                                RecordedCall.CUSTOMTABS, ref.method_name,
                                class_facts.class_name, ref.class_name,
                                reachable=caller_reachable,
                                excluded=caller_excluded,
                            )
                        )
    return analysis


#: Drop-reason slugs for the metadata filters (steps 1-2). Pipeline-error
#: drops use the :func:`repro.errors.error_slug` taxonomy instead.
DROP_NOT_PROCESSED = "not_processed"
DROP_BELOW_MIN_INSTALLS = "below_min_installs"
DROP_UPDATED_BEFORE_CUTOFF = "updated_before_cutoff"


class AnalysisTask:
    """One unit of per-app work shipped to a worker."""

    __slots__ = ("position", "sha256", "package", "data", "category",
                 "installs")

    def __init__(self, position, sha256, package, data, category, installs):
        self.position = position
        self.sha256 = sha256
        self.package = package
        self.data = data
        self.category = category
        self.installs = installs


class AnalysisOutcome:
    """Per-app execution outcome, aggregated in selection order.

    ``error`` is a drop-taxonomy slug (None on success); ``spans`` holds
    the worker's exported span tree for process-backed runs so the study
    tracer can replay it; ``cacheable`` is False for download failures,
    which must be retried on the next run. ``class_digests`` is the
    app's ordered class-digest stream and ``new_facts`` the facts this
    task computed rather than reused — the worker ship-back that warms
    the corpus-level class cache and feeds its deterministic accounting.
    """

    __slots__ = ("position", "sha256", "package", "analysis", "error",
                 "message", "cost", "spans", "span", "worker", "cached",
                 "cacheable", "class_digests", "new_facts")

    def __init__(self, position, sha256, package, analysis, error=None,
                 message=None):
        self.position = position
        self.sha256 = sha256
        self.package = package
        self.analysis = analysis
        self.error = error
        self.message = message
        self.cost = 0.0
        self.spans = None
        self.span = None
        self.worker = None
        self.cached = False
        self.cacheable = True
        self.class_digests = None
        self.new_facts = None


#: What the analysis cache stores for one (sha256, options) key — now the
#: shared record type persisted by the longitudinal RunStore as well.
_CachedEntry = OutcomeRecord


class _WorkerSettings:
    """Picklable knobs shipped to every worker invocation."""

    __slots__ = ("options", "real_clock", "class_cache")

    def __init__(self, options, real_clock=False, class_cache=True):
        self.options = options
        self.real_clock = real_clock
        self.class_cache = class_cache


def _execute_analysis(options, task, decompiler=None, facts_cache=None,
                      recorder=None):
    """Run one task with per-app fault isolation.

    Any :class:`ReproError` (broken APK, decompilation failure, ...)
    becomes a failed outcome carrying its drop slug; only non-library
    exceptions — genuine bugs — propagate and abort the run.
    """
    try:
        analysis = analyze_apk_bytes(
            task.data,
            options=options,
            decompiler=decompiler,
            category=task.category,
            installs=task.installs,
            facts_cache=facts_cache,
            recorder=recorder,
        )
    except ReproError as exc:
        analysis = AppAnalysis(task.package, category=task.category,
                               installs=task.installs)
        analysis.failed = True
        analysis.failure_reason = str(exc)
        outcome = AnalysisOutcome(task.position, task.sha256, task.package,
                                  analysis, error_slug(exc), str(exc))
    else:
        outcome = AnalysisOutcome(task.position, task.sha256, task.package,
                                  analysis)
    if recorder is not None:
        outcome.class_digests = recorder.digests
        outcome.new_facts = recorder.new
    return outcome


#: Process-local class-facts cache for pool workers. Workers fork with
#: it unset and die with the pool, so it deduplicates across the chunks
#: one worker processes within a single run — the parent merges each
#: task's shipped ``new_facts`` to cover everything else.
_WORKER_FACTS = None


def _worker_facts_cache():
    global _WORKER_FACTS
    if _WORKER_FACTS is None:
        _WORKER_FACTS = ClassFactsCache(max_entries=None, cache_dir=None)
    return _WORKER_FACTS


def _run_analysis_task(settings, task):
    """Process-pool entry point: analyze one app in a worker.

    The worker traces into its own tracer (a fresh deterministic
    TickClock unless the study injected a real clock) and exports the
    span tree in the outcome, so the parent can replay it and per-app
    stage timings survive the process boundary.
    """
    clock = time.perf_counter if settings.real_clock else TickClock()
    tracer = Tracer(clock=clock)
    facts_cache = _worker_facts_cache() if settings.class_cache else None
    recorder = FactsRecorder() if settings.class_cache else None
    with use_tracer(tracer), bind_context(package=task.package):
        with tracer.span("analyze_app", package=task.package) as root:
            outcome = _execute_analysis(settings.options, task,
                                        facts_cache=facts_cache,
                                        recorder=recorder)
    outcome.cost = root.duration
    outcome.spans = [root.to_dict()]
    return outcome


class StaticAnalysisPipeline:
    """The corpus-level study runner (Figure 1 steps 1-2 + aggregation)."""

    def __init__(self, corpus, options=None, labeler=None, obs=None,
                 exec_config=None, cache=None, snapshot_date=None,
                 checkpoint=None, progress_hook=None):
        self.corpus = corpus
        self.options = options or PipelineOptions()
        self.labeler = labeler or SdkLabeler(corpus.catalog)
        self.decompiler = Decompiler()
        self.obs = obs if obs is not None else default_obs()
        self.exec_config = (exec_config if exec_config is not None
                            else ExecConfig())
        # The AndroZoo snapshot this run lists; defaults to the corpus
        # config's date, overridden per run by the longitudinal engine.
        if snapshot_date is None:
            snapshot_date = corpus.config.snapshot_date
        elif isinstance(snapshot_date, str):
            snapshot_date = datetime.date.fromisoformat(snapshot_date)
        self.snapshot_date = snapshot_date
        #: Optional per-outcome callable (completion order), used by the
        #: longitudinal engine to persist checkpoints mid-run.
        self.checkpoint = checkpoint
        #: Optional per-outcome callable (completion order) streaming
        #: live progress, e.g. a :class:`repro.obs.ProgressReporter`.
        self.progress_hook = progress_hook
        #: The latest run's "execute" span, kept so process-backend
        #: worker spans replay under the right parent (see
        #: :meth:`_replay_worker_spans`).
        self._execute_span = None
        #: Streaming runs replay worker spans before the deterministic
        #: schedule exists; the replayed roots park here (by selection
        #: position) until :meth:`_assign_workers` stamps them.
        self._replayed_roots = {}
        if cache is None:
            cache = getattr(corpus, "analysis_cache", None)
        self.cache = cache if cache is not None else AnalysisCache()
        self.log = get_logger("static.pipeline")
        self._drops = self.obs.counter(
            DROPS_METRIC,
            "Apps dropped before successful analysis, by reason.",
            ("reason",),
        )
        self._listed = self.obs.counter(
            APPS_LISTED_METRIC,
            "Play-market apps listed in the AndroZoo snapshot.",
        )
        self._analyzed = self.obs.counter(
            APPS_ANALYZED_METRIC, "Apps successfully analyzed.",
        )
        self._cache_hits = self.obs.counter(
            EXEC_CACHE_HITS_METRIC,
            "Per-app analysis outcomes served from the result cache.",
        )
        self._cache_misses = self.obs.counter(
            EXEC_CACHE_MISSES_METRIC,
            "Per-app analysis outcomes that required real work.",
        )

    def _drop(self, reason, count=1):
        if count:
            self._drops.labels(reason=reason).inc(count)

    def select_apps(self):
        """Steps (1)-(2): snapshot listing + metadata filters.

        Returns (selected_rows, funnel_counts) where each selected row is
        an (IndexRow, AppListing) pair.
        """
        from repro.androzoo.repository import PLAY_MARKET
        from repro.errors import AppNotFoundError
        from repro.playstore.store import PlayScraperClient

        config = self.corpus.config
        with self.obs.span("list", snapshot=str(self.snapshot_date)):
            snapshot = self.corpus.repository.snapshot(self.snapshot_date)
            packages = snapshot.packages(market=PLAY_MARKET)
        self._listed.inc(len(packages))
        self.log.info("snapshot_listed", snapshot=str(self.snapshot_date),
                      packages=len(packages))
        scraper = PlayScraperClient(self.corpus.store)

        funnel = {
            "androzoo_play_apps": len(packages),
            "found_on_play": 0,
            "with_100k_downloads": 0,
            "updated_after_2021": 0,
        }
        selected = []
        with self.obs.span("filter"):
            for package in packages:
                listing = scraper.try_app_listing(package)
                if listing is None:
                    self._drop(error_slug(AppNotFoundError))
                    continue
                funnel["found_on_play"] += 1
                if listing.installs < config.min_installs:
                    self._drop(DROP_BELOW_MIN_INSTALLS)
                    continue
                funnel["with_100k_downloads"] += 1
                if listing.updated < config.update_cutoff:
                    self._drop(DROP_UPDATED_BEFORE_CUTOFF)
                    continue
                funnel["updated_after_2021"] += 1
                # Packages were listed from the Play market; restrict the
                # version pick the same way so a newer non-Play archive of
                # the same package can never be downloaded instead.
                row = snapshot.latest_version(package, market=PLAY_MARKET)
                if row is None:
                    self._drop(error_slug(RepositoryError))
                    continue
                selected.append((row, listing))
        self.log.info("funnel_selected", **funnel)
        return selected, funnel

    def run(self, max_apps=None, progress=None):
        """Run the full study; returns a :class:`StudyResult`."""
        if self.exec_config.streaming:
            return self.run_streaming(max_apps, progress)
        with self.obs.activate(), \
                bind_context(stage="static",
                             snapshot=str(self.snapshot_date)), \
                self.obs.span("run") as run_span:
            return self._run(max_apps, progress, run_span)

    def run_streaming(self, max_apps=None, progress=None):
        """Run the study on the streaming scheduler (same result bytes).

        Aggregation, checkpointing and progress consume outcomes as
        they land instead of waiting for the pool barrier; see
        :mod:`repro.exec.stream` and DESIGN.md §Streaming scheduler.
        """
        plan = self.stream_plan(max_apps=max_apps, progress=progress)
        scheduler = StreamScheduler(self.exec_config, log=self.log)
        scheduler.run([plan.stage])
        return plan.finalize(scheduler)

    def stream_plan(self, max_apps=None, progress=None):
        """Open a streaming run and return its :class:`PipelineStreamPlan`.

        The plan holds the study's ``run``/``execute`` spans open on its
        own tracer (no ambient contextvar, so several plans can share
        one :class:`~repro.exec.StreamScheduler`), exposes ``stage`` for
        the scheduler, and ``finalize(scheduler)`` closes the run.
        """
        return PipelineStreamPlan(self, max_apps=max_apps, progress=progress)

    def _select_for_run(self, max_apps):
        """Steps (1)-(2) plus the funnel-annotated result shell."""
        selected, funnel = self.select_apps()
        if max_apps is not None and len(selected) > max_apps:
            self._drop(DROP_NOT_PROCESSED, len(selected) - max_apps)
            selected = selected[:max_apps]
        result = StudyResult(self.labeler)
        result.androzoo_play_apps = funnel["androzoo_play_apps"]
        result.found_on_play = funnel["found_on_play"]
        result.popular = funnel["with_100k_downloads"]
        result.selected = funnel["updated_after_2021"]
        return selected, result

    def _run(self, max_apps, progress, run_span):
        selected, result = self._select_for_run(max_apps)

        evictions_before = (self.cache.evictions,
                            self.cache.classes.evictions)
        outcomes = self._execute(selected)
        fingerprint = self.options.cache_key()
        for position, outcome in enumerate(outcomes):
            self._aggregate(result, outcome, fingerprint)
            if progress is not None and (position + 1) % 200 == 0:
                progress(position + 1, len(selected))
        self._record_eviction_metrics(evictions_before)

        run_span.set_attribute("analyzed", result.analyzed)
        run_span.set_attribute("broken", result.broken)
        run_span.set_attribute("workers", self.exec_config.max_workers)
        self.log.info("run_complete", analyzed=result.analyzed,
                      broken=result.broken, selected=len(selected),
                      workers=self.exec_config.max_workers)
        return result

    # -- sharded execution ---------------------------------------------------

    def _execute(self, selected):
        """Steps (3)-(5) for every selected app, sharded over workers.

        Returns one :class:`AnalysisOutcome` per selected row, in
        selection order; cache hits and download failures short-circuit
        without touching the pool.
        """
        class_enabled = self.exec_config.class_cache
        prior_digests = (self.cache.classes.known_digests()
                         if class_enabled else ())
        outcomes, tasks = self._prepare(selected)
        executed = self._run_tasks(tasks)
        schedule = simulate_schedule([o.cost for o in executed],
                                     self.exec_config.max_workers,
                                     self.exec_config.chunk_size)
        for outcome, worker in zip(executed, schedule.assignments):
            outcome.worker = worker
            if outcome.span is not None:
                outcome.span.set_attribute("worker", "w%d" % worker)
            outcomes[outcome.position] = outcome
        self._record_exec_metrics(outcomes, len(tasks), schedule)
        if class_enabled:
            self._record_class_metrics(outcomes, prior_digests)
        return outcomes

    def _prepare(self, selected):
        """Cache/download short-circuits plus the worker task list.

        Returns ``(outcomes, tasks)``: ``outcomes`` is the
        selection-order result list pre-filled at every short-circuited
        position (None where a task must run), ``tasks`` the
        :class:`AnalysisTask` list for the pool or stream stage.
        """
        fingerprint = self.options.cache_key()
        outcomes = [None] * len(selected)
        tasks = []
        for position, (row, listing) in enumerate(selected):
            entry = self.cache.get(row.sha256, fingerprint)
            if entry is not None:
                self._cache_hits.inc()
                outcome = AnalysisOutcome(position, row.sha256, row.package,
                                          entry.analysis, entry.error,
                                          entry.message)
                outcome.cached = True
                outcome.cacheable = False
                outcomes[position] = outcome
                continue
            self._cache_misses.inc()
            with bind_context(package=row.package), \
                    self.obs.span("download", package=row.package):
                try:
                    data = self.corpus.repository.download(row.sha256)
                except RepositoryError as exc:
                    outcomes[position] = self._download_failure(
                        position, row, listing, exc
                    )
                    continue
            tasks.append(AnalysisTask(position, row.sha256, row.package,
                                      data, listing.category,
                                      listing.installs))
        return outcomes, tasks

    def _run_tasks(self, tasks):
        """Map the analysis over the configured pool, in task order."""
        pool = make_pool(self.exec_config, log=self.log)
        settings = _WorkerSettings(
            self.options,
            real_clock=not isinstance(self.obs.clock, TickClock),
            class_cache=self.exec_config.class_cache,
        )
        with self.obs.span("execute", backend=pool.name,
                           workers=self.exec_config.max_workers,
                           tasks=len(tasks)) as execute_span:
            # Remembered so process-backend worker spans replay *under*
            # this span during aggregation (it is closed by then) — the
            # trace tree keeps the same shape as the inline backend's.
            self._execute_span = execute_span
            if pool.name == BACKEND_PROCESS:
                fn = functools.partial(_run_analysis_task, settings)
            else:
                fn = functools.partial(self._inline_task, settings)
            if hasattr(self.progress_hook, "begin"):
                self.progress_hook.begin(len(tasks))
            on_result = chain_results(self.checkpoint, self.progress_hook)
            executed = pool.map(tasks, fn, on_result=on_result)
        if pool.repaired_chunks:
            self.obs.counter(
                EXEC_CHUNKS_REPAIRED_METRIC,
                "Chunks re-run after losing their worker mid-flight.",
            ).inc(pool.repaired_chunks)
        return executed

    def _inline_task(self, settings, task):
        """In-process execution path: trace into the study tracer."""
        facts_cache = self.cache.classes if settings.class_cache else None
        recorder = FactsRecorder() if settings.class_cache else None
        with bind_context(package=task.package), \
                self.obs.span("analyze_app", package=task.package) as span:
            outcome = _execute_analysis(settings.options, task,
                                        decompiler=self.decompiler,
                                        facts_cache=facts_cache,
                                        recorder=recorder)
        outcome.cost = span.duration
        outcome.span = span
        return outcome

    def _download_failure(self, position, row, listing, exc):
        """Fault isolation for step (2b): a failed download is one drop."""
        analysis = AppAnalysis(row.package, category=listing.category,
                               installs=listing.installs)
        analysis.failed = True
        analysis.failure_reason = str(exc)
        outcome = AnalysisOutcome(position, row.sha256, row.package,
                                  analysis, error_slug(exc), str(exc))
        outcome.cacheable = False  # downloads are retried next run
        return outcome

    def _aggregate(self, result, outcome, fingerprint):
        """Fold one outcome into the study result (selection order)."""
        with bind_context(package=outcome.package):
            if outcome.spans:
                self._replay_worker_spans(outcome)
            if outcome.error is not None:
                result.broken += 1
                self._drop(outcome.error)
                self.log.warning("app_failed", sha256=outcome.sha256,
                                 reason=outcome.error,
                                 detail=outcome.message,
                                 cached=outcome.cached)
            else:
                result.analyzed += 1
                self._analyzed.inc()
                self.log.debug("analyzed",
                               calls=len(outcome.analysis.calls),
                               classes=outcome.analysis.class_count,
                               cached=outcome.cached)
            # Content identity travels with the analysis so downstream
            # stores (repro.results) can key outcomes by (sha256,
            # options, corpus) — set on cached replays too, keeping
            # cache-on/off results identical.
            outcome.analysis.sha256 = outcome.sha256
            result.add(outcome.analysis)
            if outcome.cacheable and not outcome.cached:
                self.cache.put(outcome.sha256, fingerprint,
                               _CachedEntry(outcome.analysis, outcome.error,
                                            outcome.message))

    def _replay_worker_spans(self, outcome):
        """Attach a worker's exported span tree to the study tracer.

        Replayed trees hang off the (already closed) "execute" span, the
        same parent the inline backend records under, so the trace — and
        every flamegraph folded from it — has one shape per run
        regardless of backend.
        """
        tracer = self.obs.tracer
        for data in outcome.spans:
            root = Span.from_dict(data)
            if outcome.worker is not None:
                root.set_attribute("worker", "w%d" % outcome.worker)
            else:
                # Streaming runs aggregate before the deterministic
                # schedule exists; park the root until finalize stamps
                # worker attribution post-hoc.
                self._replayed_roots.setdefault(outcome.position,
                                                []).append(root)
            parent = self._execute_span or tracer.current()
            if parent is not None:
                parent.children.append(root)
            else:
                tracer.roots.append(root)
            if tracer.on_span_end is not None:
                for span in root.iter_spans():
                    tracer.on_span_end(span)

    # -- streaming execution -------------------------------------------------

    def _stage_context(self):
        """Per-event ambient context for streamed deliveries.

        The streaming scheduler interleaves several studies' events, so
        no study may hold its tracer/log context across the run; this
        context manager is entered around every task and delivery
        instead.
        """
        @contextlib.contextmanager
        def enter():
            with self.obs.activate(), \
                    bind_context(stage="static",
                                 snapshot=str(self.snapshot_date)):
                yield
        return enter

    def _task_fn(self):
        """The per-task callable for this config's resolved backend."""
        settings = _WorkerSettings(
            self.options,
            real_clock=not isinstance(self.obs.clock, TickClock),
            class_cache=self.exec_config.class_cache,
        )
        if self.exec_config.resolved_backend == BACKEND_PROCESS:
            return functools.partial(_run_analysis_task, settings)
        return functools.partial(self._inline_task, settings)

    def _lost_task(self, task):
        """Quarantine outcome for a task whose workers kept dying."""
        message = "worker lost after %d attempts" % \
            self.exec_config.max_attempts
        analysis = AppAnalysis(task.package, category=task.category,
                               installs=task.installs)
        analysis.failed = True
        analysis.failure_reason = message
        outcome = AnalysisOutcome(task.position, task.sha256, task.package,
                                  analysis, WORKER_LOST_SLUG, message)
        outcome.cacheable = False  # retried on the next run
        return outcome

    def _assign_workers(self, executed, workers):
        """Stamp deterministic worker attribution onto streamed outcomes."""
        for outcome, worker in zip(executed, workers):
            outcome.worker = worker
            label = "w%d" % worker
            if outcome.span is not None:
                outcome.span.set_attribute("worker", label)
            for root in self._replayed_roots.pop(outcome.position, ()):
                root.set_attribute("worker", label)

    def _record_stream_metrics(self, scheduler, schedule):
        """Scheduler health counters for the run report.

        Steals come from the deterministic schedule replay; repair and
        quarantine counts are what the live repair pass actually did
        (nonzero only under worker faults).
        """
        self.obs.counter(
            EXEC_STEALS_METRIC,
            "Work-steal events in the simulated streamed schedule.",
        ).inc(schedule.steals)
        self.obs.counter(
            EXEC_CHUNKS_REPAIRED_METRIC,
            "Chunks re-run after losing their worker mid-flight.",
        ).inc(scheduler.repaired_chunks)
        self.obs.counter(
            EXEC_TASKS_QUARANTINED_METRIC,
            "Tasks dropped as worker_lost after the retry budget.",
        ).inc(scheduler.quarantined_tasks)

    def _record_exec_metrics(self, outcomes, task_count, schedule):
        """Deterministic execution metrics for the run report."""
        config = self.exec_config
        self.obs.gauge(
            EXEC_WORKERS_METRIC, "Configured worker count.",
        ).set(config.max_workers)
        self.obs.gauge(
            EXEC_CHUNK_SIZE_METRIC, "Tasks per worker dispatch.",
        ).set(config.chunk_size)
        self.obs.gauge(
            EXEC_BACKEND_METRIC, "Resolved execution backend (info).",
            ("backend",),
        ).labels(backend=config.resolved_backend).set(1)
        chunks = -(-task_count // config.chunk_size) if task_count else 0
        self.obs.gauge(
            EXEC_QUEUE_DEPTH_METRIC,
            "High-water mark of chunks in the bounded work queue.",
        ).set(min(config.window, chunks))
        tasks = self.obs.counter(
            EXEC_TASKS_METRIC, "Per-app tasks, by outcome.", ("status",),
        )
        for outcome in outcomes:
            if outcome.cached:
                tasks.labels(status="cached").inc()
            elif outcome.error is not None:
                tasks.labels(status="failed").inc()
            else:
                tasks.labels(status="ok").inc()
        busy = self.obs.counter(
            EXEC_WORKER_BUSY_METRIC,
            "Clock units each worker spent analyzing apps.",
            ("worker",),
        )
        for worker, amount in enumerate(schedule.worker_busy):
            if amount:
                busy.labels(worker="w%d" % worker).inc(amount)
        self.obs.gauge(
            EXEC_CRITICAL_PATH_METRIC,
            "Makespan of the (simulated greedy) worker schedule.",
        ).set(schedule.critical_path)

    def _record_class_metrics(self, outcomes, prior):
        """Deterministic class-cache accounting by selection-order replay.

        Worker-local hit counts depend on chunk scheduling, so they never
        feed metrics. Instead: merge every task's shipped facts into the
        corpus cache, then replay each outcome's ordered digest stream in
        selection order — a digest is a hit iff it was cached before this
        run or already seen earlier in the replay. The result is
        byte-identical at any worker count and backend.
        """
        classes = self.cache.classes
        for outcome in outcomes:
            if outcome.new_facts:
                classes.merge(outcome.new_facts)
        prior = set(prior)
        seen = set()
        hits = misses = 0
        deduped = 0
        saved = 0.0
        for outcome in outcomes:
            if not outcome.class_digests:
                continue
            for digest in outcome.class_digests:
                if digest in prior or digest in seen:
                    hits += 1
                    facts = classes.peek(digest)
                    if facts is not None:
                        deduped += facts.canonical_size
                        saved += facts.cost
                else:
                    misses += 1
                    seen.add(digest)
        self.obs.counter(
            EXEC_CLASS_CACHE_HITS_METRIC,
            "Class-facts lookups served without recomputation.",
        ).inc(hits)
        self.obs.counter(
            EXEC_CLASS_CACHE_MISSES_METRIC,
            "Class-facts lookups that computed fresh facts.",
        ).inc(misses)
        self.obs.counter(
            EXEC_CLASS_BYTES_DEDUPED_METRIC,
            "Canonical class bytes not re-analyzed thanks to the cache.",
        ).inc(deduped)
        self.obs.counter(
            EXEC_CLASS_TIME_SAVED_METRIC,
            "Estimated clock units saved by class-facts reuse.",
        ).inc(saved)

    def _record_eviction_metrics(self, before):
        """Per-tier LRU eviction deltas for this run (nonzero only)."""
        apk_before, class_before = before
        counter = self.obs.counter(
            EXEC_CACHE_EVICTIONS_METRIC,
            "LRU evictions from the two-tier analysis cache, by tier.",
            ("tier",),
        )
        apk_delta = self.cache.evictions - apk_before
        class_delta = self.cache.classes.evictions - class_before
        if apk_delta:
            counter.labels(tier="apk").inc(apk_delta)
        if class_delta:
            counter.labels(tier="class").inc(class_delta)


class PipelineStreamPlan:
    """One static study's opened streaming run.

    Created by :meth:`StaticAnalysisPipeline.stream_plan`. Selection and
    download happen eagerly; the per-app analysis waits in ``stage`` for
    a :class:`~repro.exec.StreamScheduler` (shared with other studies'
    stages when interleaving). Aggregation, checkpointing and progress
    run incrementally as outcomes stream in — in exact selection order
    via the prefix-flush buffer, so the result is byte-identical to the
    barrier path. The ``run``/``execute`` spans are held open on the
    study's own tracer (never via an ambient contextvar) and closed by
    :meth:`finalize`.
    """

    def __init__(self, pipeline, max_apps=None, progress=None):
        self.pipeline = pipeline
        self.progress = progress
        #: Executed outcomes in task order (quarantined ones included).
        self.executed = []
        self._ctx = pipeline._stage_context()
        pipeline._replayed_roots.clear()
        with self._ctx():
            self._run_cm = pipeline.obs.span("run")
            self.run_span = self._run_cm.__enter__()
            self.selected, self.result = pipeline._select_for_run(max_apps)
            self.fingerprint = pipeline.options.cache_key()
            self.class_enabled = pipeline.exec_config.class_cache
            self.prior_digests = (pipeline.cache.classes.known_digests()
                                  if self.class_enabled else ())
            self.evictions_before = (pipeline.cache.evictions,
                                     pipeline.cache.classes.evictions)
            self.outcomes, tasks = pipeline._prepare(self.selected)
            self._flush = OrderedFlush(self._consume)
            self.stage = StreamStage(
                "static", tasks, pipeline._task_fn(),
                on_lost=pipeline._lost_task,
                chunk_size=pipeline.exec_config.chunk_size,
                context=self._ctx,
            )
            self.stage.consume_ordered(self._on_ordered)
            self.stage.consume(chain_results(pipeline.checkpoint,
                                             pipeline.progress_hook))
            self._execute_cm = pipeline.obs.span(
                "execute", backend=pipeline.exec_config.resolved_backend,
                workers=pipeline.exec_config.max_workers, tasks=len(tasks),
            )
            self.execute_span = self._execute_cm.__enter__()
            pipeline._execute_span = self.execute_span
            if hasattr(pipeline.progress_hook, "begin"):
                pipeline.progress_hook.begin(len(tasks))
            # Short-circuited positions (cache hits, download failures)
            # flow through the same ordered flush so aggregation sees
            # one selection-order stream.
            for outcome in self.outcomes:
                if outcome is not None:
                    self._flush.push(outcome.position, outcome)

    def _on_ordered(self, index, outcome):
        self.executed.append(outcome)
        self._flush.push(outcome.position, outcome)

    def _consume(self, position, outcome):
        self.pipeline._aggregate(self.result, outcome, self.fingerprint)
        if self.progress is not None and (position + 1) % 200 == 0:
            self.progress(position + 1, len(self.selected))

    def costs(self):
        """Measured per-task costs, in task order (the simulate input)."""
        return [outcome.cost for outcome in self.executed]

    def finalize(self, scheduler, schedule=None, assignments=None):
        """Close the run: schedule replay, metrics, spans. Returns result.

        ``schedule``/``assignments`` come from the caller for
        interleaved runs (one shared simulation across stages); left at
        None, the plan simulates its own single-stage schedule.
        """
        pipeline = self.pipeline
        with self._ctx():
            self._execute_cm.__exit__(None, None, None)
            for outcome in self.executed:
                self.outcomes[outcome.position] = outcome
            if schedule is None:
                schedule, per_stage = scheduler.simulate([self.costs()])
                assignments = per_stage[0]
            pipeline._assign_workers(self.executed, assignments)
            view = stage_schedule_view(pipeline.exec_config, assignments,
                                       self.costs(), schedule)
            pipeline._record_exec_metrics(self.outcomes,
                                          len(self.stage.tasks), view)
            pipeline._record_stream_metrics(scheduler, schedule)
            if self.class_enabled:
                pipeline._record_class_metrics(self.outcomes,
                                               self.prior_digests)
            pipeline._record_eviction_metrics(self.evictions_before)
            self.run_span.set_attribute("analyzed", self.result.analyzed)
            self.run_span.set_attribute("broken", self.result.broken)
            self.run_span.set_attribute("workers",
                                        pipeline.exec_config.max_workers)
            pipeline.log.info("run_complete", analyzed=self.result.analyzed,
                              broken=self.result.broken,
                              selected=len(self.selected),
                              workers=pipeline.exec_config.max_workers)
            self._run_cm.__exit__(None, None, None)
        return self.result
