"""Aggregation of a StudyResult into the paper's tables and figures.

One :class:`Aggregator` pass over the analyses computes everything needed
for Tables 2, 3, 4, 5 and 7 and Figures 3 and 4; ``table*``/``figure*``
helpers render :mod:`repro.reporting` objects with the same rows/series as
the paper.
"""

from collections import defaultdict

from repro.android.api import WEBVIEW_TRACKED_METHODS
from repro.obs import trace_span
from repro.reporting import GroupedSeries, Heatmap, Table
from repro.sdk.catalog import SdkCategory
from repro.sdk.labeling import PackageLabel
from repro.static_analysis.results import RecordedCall


class Aggregator:
    """Single-pass ecosystem aggregation over a StudyResult."""

    def __init__(self, result):
        self.result = result
        self.labeler = result.labeler

        self.total_analyzed = result.analyzed
        self.webview_apps = 0
        self.ct_apps = 0
        self.both_apps = 0
        self.webview_apps_with_sdks = 0
        self.ct_apps_with_sdks = 0
        self.both_apps_with_sdks = 0

        #: method -> (apps calling it, apps calling it via top SDKs)
        self.method_apps = defaultdict(int)
        self.method_apps_via_sdk = defaultdict(int)

        #: sdk name -> apps embedding it per mechanism
        self.sdk_webview_apps = defaultdict(int)
        self.sdk_ct_apps = defaultdict(int)
        self._sdk_by_name = {}

        #: (sdk_category, method) -> apps; sdk_category -> apps (via wv)
        self.category_method_apps = defaultdict(int)
        self.category_webview_apps = defaultdict(int)
        self.category_ct_apps = defaultdict(int)

        #: app category -> {sdk type -> apps} per mechanism
        self.appcat_webview = defaultdict(lambda: defaultdict(int))
        self.appcat_ct = defaultdict(lambda: defaultdict(int))
        self.appcat_totals = defaultdict(int)

        self.unknown_packages = set()
        self.obfuscated_packages = set()

        self._run()

    def _run(self):
        with trace_span("label", apps=self.total_analyzed):
            for analysis in self.result.successful():
                self._aggregate_app(analysis)

    def _aggregate_app(self, analysis):
        uses_wv = analysis.uses_webview
        uses_ct = analysis.uses_customtabs
        if analysis.category is not None:
            self.appcat_totals[analysis.category] += 1
        if not (uses_wv or uses_ct):
            return
        attribution = analysis.label_sdks(self.labeler)
        if uses_wv:
            self.webview_apps += 1
            if attribution.webview.uses_top_sdks:
                self.webview_apps_with_sdks += 1
        if uses_ct:
            self.ct_apps += 1
            if attribution.customtabs.uses_top_sdks:
                self.ct_apps_with_sdks += 1
        if uses_wv and uses_ct:
            self.both_apps += 1
            if (attribution.webview.uses_top_sdks
                    or attribution.customtabs.uses_top_sdks):
                self.both_apps_with_sdks += 1

        self.unknown_packages.update(attribution.webview.unknown_packages)
        self.unknown_packages.update(attribution.customtabs.unknown_packages)
        self.obfuscated_packages.update(
            attribution.webview.obfuscated_packages
        )
        self.obfuscated_packages.update(
            attribution.customtabs.obfuscated_packages
        )

        webview_types = set()
        for sdk in attribution.webview.sdks:
            self.sdk_webview_apps[sdk.name] += 1
            self._sdk_by_name[sdk.name] = sdk
            webview_types.add(sdk.category)
        for sdk_type in webview_types:
            self.category_webview_apps[sdk_type] += 1
            if analysis.category is not None:
                self.appcat_webview[analysis.category][sdk_type] += 1
        ct_types = set()
        for sdk in attribution.customtabs.sdks:
            self.sdk_ct_apps[sdk.name] += 1
            self._sdk_by_name[sdk.name] = sdk
            ct_types.add(sdk.category)
        for sdk_type in ct_types:
            self.category_ct_apps[sdk_type] += 1
            if analysis.category is not None:
                self.appcat_ct[analysis.category][sdk_type] += 1

        # Per-method usage (Table 7) and per-SDK-type method mix (Figure 4).
        methods_seen = set()
        methods_via_sdk = set()
        category_methods = set()
        for call in analysis.counting_calls(RecordedCall.WEBVIEW):
            methods_seen.add(call.method)
            label = self.labeler.label(call.caller_package)
            if label.status == PackageLabel.KNOWN:
                methods_via_sdk.add(call.method)
            if label.sdk is not None:
                # Obfuscated-but-catalogued SDKs still contribute to the
                # per-type method mix (their type is Unknown).
                category_methods.add((label.sdk.category, call.method))
        for method in methods_seen:
            self.method_apps[method] += 1
        for method in methods_via_sdk:
            self.method_apps_via_sdk[method] += 1
        for pair in category_methods:
            self.category_method_apps[pair] += 1

    # -- SDK mechanism classification -------------------------------------------

    def observed_sdk_mechanisms(self):
        """sdk name -> ('webview'|'ct'|'both') over the whole corpus."""
        mechanisms = {}
        names = set(self.sdk_webview_apps) | set(self.sdk_ct_apps)
        for name in names:
            wv = self.sdk_webview_apps.get(name, 0) > 0
            ct = self.sdk_ct_apps.get(name, 0) > 0
            mechanisms[name] = "both" if (wv and ct) else (
                "webview" if wv else "ct"
            )
        return mechanisms

    def sdk_profile(self, name):
        return self._sdk_by_name[name]


# -- Tables -------------------------------------------------------------------

def table2(result):
    """Table 2: the dataset funnel."""
    table = Table(["Dataset", "No. of apps"],
                  title="Table 2: Statistics for apps statically analyzed")
    funnel = result.funnel_dict()
    table.add_row("Play Store apps in Androzoo", funnel["androzoo_play_apps"])
    table.add_row("Apps found on Play Store", funnel["found_on_play"])
    table.add_row("Apps with 100k+ downloads", funnel["with_100k_downloads"])
    table.add_row("Apps with 100k+ downloads and updated after 2021",
                  funnel["updated_after_2021"])
    table.add_row("Apps successfully analyzed",
                  funnel["successfully_analyzed"])
    return table


def table3(aggregator):
    """Table 3: SDK counts per type x mechanism."""
    mechanisms = aggregator.observed_sdk_mechanisms()
    per_type = defaultdict(lambda: {"webview": 0, "ct": 0, "both": 0})
    for name, mechanism in mechanisms.items():
        category = aggregator.sdk_profile(name).category
        if mechanism == "both":
            per_type[category]["webview"] += 1
            per_type[category]["ct"] += 1
            per_type[category]["both"] += 1
        else:
            per_type[category][mechanism] += 1

    table = Table(
        ["Type of SDK", "Use WebViews", "Use CT", "Use both"],
        title="Table 3: Use of WebViews and CTs in SDKs",
    )
    totals = [0, 0, 0]
    for category in SdkCategory:
        counts = per_type.get(category)
        if counts is None:
            continue
        table.add_row(str(category), counts["webview"], counts["ct"],
                      counts["both"])
        totals[0] += counts["webview"]
        totals[1] += counts["ct"]
        totals[2] += counts["both"]
    table.add_row("Total", *totals)
    return table


def _popular_sdk_table(aggregator, per_sdk_apps, title, top_n=5):
    by_type = defaultdict(list)
    for name, apps in per_sdk_apps.items():
        category = aggregator.sdk_profile(name).category
        by_type[category].append((name, apps))
    table = Table(["Type of SDK", "Total #apps", "SDK Name", "#apps"],
                  title=title)
    ordered = sorted(
        by_type.items(), key=lambda item: -sum(a for _, a in item[1])
    )
    for category, sdk_list in ordered:
        total = sum(apps for _, apps in sdk_list)
        sdk_list.sort(key=lambda pair: -pair[1])
        for position, (name, apps) in enumerate(sdk_list[:top_n]):
            table.add_row(
                str(category) if position == 0 else "",
                total if position == 0 else "",
                name, apps,
            )
    return table


def table4(aggregator, top_n=5):
    """Table 4: popular SDKs using WebViews."""
    return _popular_sdk_table(
        aggregator, aggregator.sdk_webview_apps,
        "Table 4: Popular SDKs which use WebViews", top_n,
    )


def table5(aggregator, top_n=3):
    """Table 5: popular SDKs using CTs."""
    return _popular_sdk_table(
        aggregator, aggregator.sdk_ct_apps,
        "Table 5: Popular SDKs which use CTs", top_n,
    )


def table7(aggregator):
    """Table 7: apps using WebViews/CTs and per-method app counts."""
    table = Table(
        ["Dataset", "Total #apps", "#apps using top SDKs"],
        title="Table 7: Apps using WebViews and CTs",
    )
    table.add_row("Apps using WebViews", aggregator.webview_apps,
                  aggregator.webview_apps_with_sdks)
    ordered_methods = sorted(
        WEBVIEW_TRACKED_METHODS,
        key=lambda m: -aggregator.method_apps.get(m, 0),
    )
    for method in ordered_methods:
        table.add_row("  " + method, aggregator.method_apps.get(method, 0),
                      aggregator.method_apps_via_sdk.get(method, 0))
    table.add_row("Apps using CTs", aggregator.ct_apps,
                  aggregator.ct_apps_with_sdks)
    table.add_row("Apps using both WebViews and CTs", aggregator.both_apps,
                  aggregator.both_apps_with_sdks)
    return table


# -- Figures ---------------------------------------------------------------------

def figure3(aggregator, top_n=10):
    """Figure 3: SDK use-case distribution per top app category.

    Returns (webview GroupedSeries, ct GroupedSeries) of per-category
    percentages of apps using each SDK type.
    """
    def build(per_appcat, label):
        ranked = sorted(
            per_appcat.items(),
            key=lambda item: -sum(item[1].values()),
        )[:top_n]
        categories = [str(app_category) for app_category, _ in ranked]
        series = GroupedSeries(
            "Figure 3 (%s): SDK use per app category (%% of category apps)"
            % label,
            categories,
        )
        sdk_types = [c for c in SdkCategory]
        for sdk_type in sdk_types:
            values = []
            for app_category, counts in ranked:
                total = aggregator.appcat_totals.get(app_category, 0) or 1
                values.append(100.0 * counts.get(sdk_type, 0) / total)
            if any(values):
                series.add_series(str(sdk_type), values)
        return series

    return (
        build(aggregator.appcat_webview, "WebViews"),
        build(aggregator.appcat_ct, "CTs"),
    )


def figure4(aggregator):
    """Figure 4: heatmap of WebView API method calls by SDK type.

    Cell (T, m) = percent of apps using a type-T SDK via WebViews whose
    type-T SDK code calls method m.
    """
    rows = [
        category for category in SdkCategory
        if aggregator.category_webview_apps.get(category, 0) > 0
    ]
    heatmap = Heatmap(
        "Figure 4: WebView API method calls by SDK type (% of type's apps)",
        [str(r) for r in rows],
        list(WEBVIEW_TRACKED_METHODS),
    )
    for category in rows:
        denominator = aggregator.category_webview_apps[category]
        for method in WEBVIEW_TRACKED_METHODS:
            count = aggregator.category_method_apps.get((category, method), 0)
            heatmap.set(str(category), method,
                        100.0 * count / denominator)
    return heatmap
