"""Opcodes and access flags for the simplified DEX format.

The opcode set is a curated subset of Dalvik's: enough to express object
construction, virtual/static/direct calls, string constants, field access
and control flow — which is all the paper's static pipeline inspects.
"""

import enum


class Opcode(enum.IntEnum):
    """Instruction opcodes."""

    NOP = 0x00
    CONST_STRING = 0x1A        # operand: string
    CONST_INT = 0x12           # operand: int
    NEW_INSTANCE = 0x22        # operand: class name
    INVOKE_VIRTUAL = 0x6E      # operand: MethodRef
    INVOKE_SUPER = 0x6F        # operand: MethodRef
    INVOKE_DIRECT = 0x70       # operand: MethodRef (constructors, private)
    INVOKE_STATIC = 0x71       # operand: MethodRef
    INVOKE_INTERFACE = 0x72    # operand: MethodRef
    IGET = 0x52                # operand: (class, field)
    IPUT = 0x59                # operand: (class, field)
    SGET = 0x60                # operand: (class, field)
    SPUT = 0x67                # operand: (class, field)
    IF_EQZ = 0x38              # operand: branch offset
    IF_NEZ = 0x39              # operand: branch offset
    GOTO = 0x28                # operand: branch offset
    RETURN_VOID = 0x0E
    RETURN = 0x0F
    THROW = 0x27
    MOVE = 0x01
    MOVE_RESULT = 0x0A

    @property
    def is_invoke(self):
        return self in _INVOKE_OPCODES


_INVOKE_OPCODES = frozenset(
    {
        Opcode.INVOKE_VIRTUAL,
        Opcode.INVOKE_SUPER,
        Opcode.INVOKE_DIRECT,
        Opcode.INVOKE_STATIC,
        Opcode.INVOKE_INTERFACE,
    }
)

INVOKE_OPCODES = _INVOKE_OPCODES


class AccessFlag(enum.IntFlag):
    """Class/method access flags (Dalvik subset)."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    INTERFACE = 0x0200
    ABSTRACT = 0x0400
    SYNTHETIC = 0x1000
    CONSTRUCTOR = 0x10000


#: Magic prefix for serialized simplified-DEX files ("sdex" + version).
DEX_MAGIC = b"sdex\x01\x00"

#: Magic for the canonical single-class encoding (content addressing).
CLASS_MAGIC = b"scls\x01\x00"
