"""Simplified DEX bytecode substrate.

Real Android apps ship Dalvik Executable (DEX) files; Androguard builds call
graphs from their ``invoke-*`` instructions. This package implements a
simplified but binary-faithful equivalent: a class/method/instruction model
(:mod:`repro.dex.model`), a compact binary format with a shared string pool
(:mod:`repro.dex.binary`), and a small assembler API used by the corpus
generator to emit app code (:mod:`repro.dex.assembler`).
"""

from repro.dex.constants import Opcode, AccessFlag
from repro.dex.model import (
    DexFile,
    DexClass,
    DexMethod,
    DexField,
    Instruction,
    MethodRef,
)
from repro.dex.binary import (
    class_digest,
    deserialize_dex,
    serialize_class,
    serialize_dex,
)
from repro.dex.assembler import ClassBuilder, MethodBuilder
from repro.dex.disassembler import disassemble, disassemble_class, assemble

__all__ = [
    "Opcode",
    "AccessFlag",
    "DexFile",
    "DexClass",
    "DexMethod",
    "DexField",
    "Instruction",
    "MethodRef",
    "serialize_dex",
    "deserialize_dex",
    "serialize_class",
    "class_digest",
    "ClassBuilder",
    "MethodBuilder",
    "disassemble",
    "disassemble_class",
    "assemble",
]
