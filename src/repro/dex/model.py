"""Object model for the simplified DEX format.

Class names use Java *binary* naming with dots (``com.example.app.MainActivity``)
rather than Dalvik type descriptors, which keeps every layer of the pipeline
(source generation, parsing, call graphs, SDK labelling) in one namespace.
"""

from repro.dex.constants import Opcode, AccessFlag
from repro.errors import DexError


class MethodRef:
    """A reference to a method: (class name, method name, descriptor).

    The descriptor is a compact signature string such as
    ``(java.lang.String)void`` — parameter types comma-separated inside the
    parentheses, return type after.
    """

    __slots__ = ("class_name", "method_name", "descriptor", "_hash")

    def __init__(self, class_name, method_name, descriptor="()void"):
        self.class_name = class_name
        self.method_name = method_name
        self.descriptor = descriptor

    @property
    def parameter_types(self):
        inside = self.descriptor[self.descriptor.index("(") + 1:
                                 self.descriptor.index(")")]
        if not inside:
            return []
        return [p.strip() for p in inside.split(",")]

    @property
    def return_type(self):
        return self.descriptor[self.descriptor.index(")") + 1:]

    @property
    def qualified_name(self):
        return "%s.%s" % (self.class_name, self.method_name)

    def key(self):
        return (self.class_name, self.method_name, self.descriptor)

    def __eq__(self, other):
        return (
            isinstance(other, MethodRef)
            and self.class_name == other.class_name
            and self.method_name == other.method_name
            and self.descriptor == other.descriptor
        )

    def __hash__(self):
        # Refs are hashed constantly as graph keys; memoize (instances
        # are immutable in practice, and __slots__ keeps this lazy).
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(
                (self.class_name, self.method_name, self.descriptor)
            )
            return self._hash

    def __repr__(self):
        return "MethodRef(%s.%s%s)" % (
            self.class_name, self.method_name, self.descriptor
        )


class Instruction:
    """A single bytecode instruction: opcode plus one optional operand."""

    __slots__ = ("opcode", "operand")

    def __init__(self, opcode, operand=None):
        self.opcode = Opcode(opcode)
        self.operand = operand
        self._validate()

    def _validate(self):
        if self.opcode.is_invoke and not isinstance(self.operand, MethodRef):
            raise DexError(
                "invoke instruction requires a MethodRef operand, got %r"
                % (self.operand,)
            )
        if self.opcode == Opcode.CONST_STRING and not isinstance(self.operand, str):
            raise DexError("const-string requires a string operand")
        if self.opcode == Opcode.NEW_INSTANCE and not isinstance(self.operand, str):
            raise DexError("new-instance requires a class-name operand")

    def __eq__(self, other):
        return (
            isinstance(other, Instruction)
            and self.opcode == other.opcode
            and self.operand == other.operand
        )

    def __hash__(self):
        return hash((self.opcode, self.operand))

    def __repr__(self):
        if self.operand is None:
            return "Instruction(%s)" % self.opcode.name
        return "Instruction(%s, %r)" % (self.opcode.name, self.operand)


class DexField:
    """A class field: name and declared type."""

    __slots__ = ("name", "type_name", "flags")

    def __init__(self, name, type_name, flags=AccessFlag.PRIVATE):
        self.name = name
        self.type_name = type_name
        self.flags = AccessFlag(flags)

    def __eq__(self, other):
        return (
            isinstance(other, DexField)
            and (self.name, self.type_name, self.flags)
            == (other.name, other.type_name, other.flags)
        )

    def __repr__(self):
        return "DexField(%s: %s)" % (self.name, self.type_name)


class DexMethod:
    """A method: name, descriptor, flags and instruction list."""

    def __init__(self, name, descriptor="()void",
                 flags=AccessFlag.PUBLIC, instructions=None):
        self.name = name
        self.descriptor = descriptor
        self.flags = AccessFlag(flags)
        self.instructions = list(instructions or [])

    @property
    def parameter_types(self):
        return MethodRef("", self.name, self.descriptor).parameter_types

    @property
    def return_type(self):
        return MethodRef("", self.name, self.descriptor).return_type

    def invoked_refs(self):
        """Yield every MethodRef invoked by this method, in order."""
        for instruction in self.instructions:
            if instruction.opcode.is_invoke:
                yield instruction.operand

    def string_constants(self):
        """Yield every string constant loaded by this method, in order."""
        for instruction in self.instructions:
            if instruction.opcode == Opcode.CONST_STRING:
                yield instruction.operand

    def __repr__(self):
        return "DexMethod(%s%s, %d instrs)" % (
            self.name, self.descriptor, len(self.instructions)
        )


class DexClass:
    """A class: binary name, superclass, interfaces, fields, methods."""

    def __init__(self, name, superclass="java.lang.Object", interfaces=None,
                 flags=AccessFlag.PUBLIC, fields=None, methods=None,
                 source_file=None):
        if not name:
            raise DexError("class name must be non-empty")
        self.name = name
        self.superclass = superclass
        self.interfaces = list(interfaces or [])
        self.flags = AccessFlag(flags)
        self.fields = list(fields or [])
        self.methods = list(methods or [])
        self.source_file = source_file or (name.rsplit(".", 1)[-1] + ".java")

    @property
    def package(self):
        """The Java package of this class ('' for the default package)."""
        if "." not in self.name:
            return ""
        return self.name.rsplit(".", 1)[0]

    @property
    def simple_name(self):
        return self.name.rsplit(".", 1)[-1]

    def method(self, name, descriptor=None):
        """Return the first method matching ``name`` (and descriptor if given)."""
        for method in self.methods:
            if method.name != name:
                continue
            if descriptor is not None and method.descriptor != descriptor:
                continue
            return method
        return None

    def method_ref(self, method):
        return MethodRef(self.name, method.name, method.descriptor)

    def __repr__(self):
        return "DexClass(%s extends %s, %d methods)" % (
            self.name, self.superclass, len(self.methods)
        )


class DexFile:
    """A container of classes, the unit stored as ``classes.dex`` in an APK."""

    def __init__(self, classes=None):
        self.classes = list(classes or [])
        self._by_name = None

    def add_class(self, dex_class):
        self.classes.append(dex_class)
        self._by_name = None

    def class_by_name(self, name):
        if self._by_name is None:
            self._by_name = {c.name: c for c in self.classes}
        return self._by_name.get(name)

    def iter_methods(self):
        """Yield (DexClass, DexMethod) pairs over every method."""
        for dex_class in self.classes:
            for method in dex_class.methods:
                yield dex_class, method

    def superclass_chain(self, name, limit=64):
        """Return the superclass chain of ``name`` within this file.

        The chain stops at classes not defined in the file (framework
        classes such as ``android.webkit.WebView``), whose name is still
        included as the final element.
        """
        chain = []
        current = name
        for _ in range(limit):
            dex_class = self.class_by_name(current)
            if dex_class is None:
                chain.append(current)
                return chain
            chain.append(current)
            if dex_class.superclass in (None, "java.lang.Object"):
                chain.append("java.lang.Object")
                return chain
            current = dex_class.superclass
        raise DexError("superclass chain too deep (cycle?) at %r" % name)

    def __len__(self):
        return len(self.classes)

    def __repr__(self):
        return "DexFile(%d classes)" % len(self.classes)
