"""Binary (de)serialization for the simplified DEX format.

Layout (all integers little-endian):

    magic            6 bytes  (b"sdex\\x01\\x00")
    string_pool_len  u32
    string_pool      repeated (u16 length, utf-8 bytes)
    class_count      u32
    classes          repeated class records

String-bearing fields (class names, method names, descriptors, string
constants) are stored as u32 indexes into the shared string pool, like a
real DEX file's string_ids section.
"""

import struct

from repro.dex.constants import (
    CLASS_MAGIC,
    DEX_MAGIC,
    INVOKE_OPCODES,
    Opcode,
    AccessFlag,
)
from repro.dex.model import (
    DexClass,
    DexField,
    DexFile,
    DexMethod,
    Instruction,
    MethodRef,
)
from repro.errors import DexError
from repro.util import sha256_hex

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_U32X2 = struct.Struct("<II")
_U32X3 = struct.Struct("<III")

#: Opcode dispatch for the deserializer hot loop: a dict lookup is far
#: cheaper than the enum constructor's ``Opcode(value)`` protocol.
_OPCODE_BY_VALUE = {int(opcode): opcode for opcode in Opcode}


class _Writer:
    def __init__(self):
        self.parts = []

    def u8(self, value):
        self.parts.append(bytes([value & 0xFF]))

    def u16(self, value):
        self.parts.append(_U16.pack(value))

    def u32(self, value):
        self.parts.append(_U32.pack(value))

    def i32(self, value):
        self.parts.append(_I32.pack(value))

    def raw(self, data):
        self.parts.append(data)

    def getvalue(self):
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data):
        self.data = data
        self.offset = 0

    def u8(self):
        value = self.data[self.offset]
        self.offset += 1
        return value

    def u16(self):
        (value,) = _U16.unpack_from(self.data, self.offset)
        self.offset += 2
        return value

    def u32(self):
        (value,) = _U32.unpack_from(self.data, self.offset)
        self.offset += 4
        return value

    def i32(self):
        (value,) = _I32.unpack_from(self.data, self.offset)
        self.offset += 4
        return value

    def raw(self, length):
        chunk = self.data[self.offset: self.offset + length]
        if len(chunk) != length:
            raise DexError("truncated dex data")
        self.offset += length
        return chunk


class _StringPool:
    def __init__(self):
        self.strings = []
        self.index = {}

    def intern(self, value):
        if value in self.index:
            return self.index[value]
        position = len(self.strings)
        self.strings.append(value)
        self.index[value] = position
        return position


def _collect_strings(dex_file, pool):
    for dex_class in dex_file.classes:
        pool.intern(dex_class.name)
        pool.intern(dex_class.superclass or "java.lang.Object")
        pool.intern(dex_class.source_file)
        for interface in dex_class.interfaces:
            pool.intern(interface)
        for field in dex_class.fields:
            pool.intern(field.name)
            pool.intern(field.type_name)
        for method in dex_class.methods:
            pool.intern(method.name)
            pool.intern(method.descriptor)
            for instruction in method.instructions:
                operand = instruction.operand
                if isinstance(operand, MethodRef):
                    pool.intern(operand.class_name)
                    pool.intern(operand.method_name)
                    pool.intern(operand.descriptor)
                elif isinstance(operand, str):
                    pool.intern(operand)


def _write_instruction(writer, pool, instruction):
    writer.u8(int(instruction.opcode))
    operand = instruction.operand
    if instruction.opcode.is_invoke:
        writer.u32(pool.intern(operand.class_name))
        writer.u32(pool.intern(operand.method_name))
        writer.u32(pool.intern(operand.descriptor))
    elif instruction.opcode in (Opcode.CONST_STRING, Opcode.NEW_INSTANCE):
        writer.u32(pool.intern(operand))
    elif instruction.opcode in (Opcode.CONST_INT, Opcode.IF_EQZ,
                                Opcode.IF_NEZ, Opcode.GOTO):
        writer.i32(int(operand or 0))
    elif instruction.opcode in (Opcode.IGET, Opcode.IPUT,
                                Opcode.SGET, Opcode.SPUT):
        class_name, field_name = operand
        writer.u32(pool.intern(class_name))
        writer.u32(pool.intern(field_name))
    else:
        # No operand: NOP, RETURN*, THROW, MOVE, MOVE_RESULT.
        pass


def _read_instruction(reader, strings):
    try:
        opcode = Opcode(reader.u8())
    except ValueError as exc:
        raise DexError("unknown opcode: %s" % exc)
    if opcode.is_invoke:
        ref = MethodRef(
            strings[reader.u32()], strings[reader.u32()], strings[reader.u32()]
        )
        return Instruction(opcode, ref)
    if opcode in (Opcode.CONST_STRING, Opcode.NEW_INSTANCE):
        return Instruction(opcode, strings[reader.u32()])
    if opcode in (Opcode.CONST_INT, Opcode.IF_EQZ, Opcode.IF_NEZ, Opcode.GOTO):
        return Instruction(opcode, reader.i32())
    if opcode in (Opcode.IGET, Opcode.IPUT, Opcode.SGET, Opcode.SPUT):
        return Instruction(opcode, (strings[reader.u32()], strings[reader.u32()]))
    return Instruction(opcode)


def _write_class_record(body, pool, dex_class):
    """One class record, interning its strings into ``pool``."""
    body.u32(pool.intern(dex_class.name))
    body.u32(pool.intern(dex_class.superclass or "java.lang.Object"))
    body.u32(pool.intern(dex_class.source_file))
    body.u32(int(dex_class.flags))
    body.u16(len(dex_class.interfaces))
    for interface in dex_class.interfaces:
        body.u32(pool.intern(interface))
    body.u16(len(dex_class.fields))
    for field in dex_class.fields:
        body.u32(pool.intern(field.name))
        body.u32(pool.intern(field.type_name))
        body.u32(int(field.flags))
    body.u16(len(dex_class.methods))
    for method in dex_class.methods:
        body.u32(pool.intern(method.name))
        body.u32(pool.intern(method.descriptor))
        body.u32(int(method.flags))
        body.u32(len(method.instructions))
        for instruction in method.instructions:
            _write_instruction(body, pool, instruction)


def _write_string_pool(writer, pool):
    writer.u32(len(pool.strings))
    for value in pool.strings:
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise DexError("string too long for pool: %d bytes" % len(encoded))
        writer.u16(len(encoded))
        writer.raw(encoded)


def serialize_dex(dex_file):
    """Serialize a :class:`DexFile` to bytes."""
    pool = _StringPool()
    _collect_strings(dex_file, pool)

    body = _Writer()
    body.u32(len(dex_file.classes))
    for dex_class in dex_file.classes:
        _write_class_record(body, pool, dex_class)

    header = _Writer()
    header.raw(DEX_MAGIC)
    _write_string_pool(header, pool)
    return header.getvalue() + body.getvalue()


#: Operand-shape opcode groups, hoisted for the serialize_class hot loop.
_INT_OPERAND_OPCODES = frozenset(
    (Opcode.CONST_INT, Opcode.IF_EQZ, Opcode.IF_NEZ, Opcode.GOTO)
)
_STRING_OPERAND_OPCODES = frozenset(
    (Opcode.CONST_STRING, Opcode.NEW_INSTANCE)
)
_FIELD_OPERAND_OPCODES = frozenset(
    (Opcode.IGET, Opcode.IPUT, Opcode.SGET, Opcode.SPUT)
)


def serialize_class(dex_class):
    """Canonical encoding of a single class, for content addressing.

    Same record layout as :func:`serialize_dex` but with a class-local
    string pool (interned in record-write order), so the bytes depend
    only on the class itself — never on sibling classes sharing a DEX
    file's pool. Two classes with equal canonical bytes are equal in
    every field the analysis pipeline reads.

    This runs once per class per APK on the pipeline's hot path (the
    cache key must be recomputed even on a hit), so it is hand-inlined
    rather than layered on :class:`_Writer`/:class:`_StringPool`.
    """
    strings = []
    index = {}
    pack_u16 = _U16.pack
    pack_u32 = _U32.pack
    pack_i32 = _I32.pack
    invoke_ops = INVOKE_OPCODES
    int_ops = _INT_OPERAND_OPCODES
    string_ops = _STRING_OPERAND_OPCODES
    field_ops = _FIELD_OPERAND_OPCODES

    def intern(value):
        position = index.get(value)
        if position is None:
            position = len(strings)
            index[value] = position
            strings.append(value)
        return position

    body = bytearray()
    body += pack_u32(intern(dex_class.name))
    body += pack_u32(intern(dex_class.superclass or "java.lang.Object"))
    body += pack_u32(intern(dex_class.source_file))
    body += pack_u32(int(dex_class.flags))
    body += pack_u16(len(dex_class.interfaces))
    for interface in dex_class.interfaces:
        body += pack_u32(intern(interface))
    body += pack_u16(len(dex_class.fields))
    for field in dex_class.fields:
        body += pack_u32(intern(field.name))
        body += pack_u32(intern(field.type_name))
        body += pack_u32(int(field.flags))
    body += pack_u16(len(dex_class.methods))
    for method in dex_class.methods:
        body += pack_u32(intern(method.name))
        body += pack_u32(intern(method.descriptor))
        body += pack_u32(int(method.flags))
        instructions = method.instructions
        body += pack_u32(len(instructions))
        for instruction in instructions:
            opcode = instruction.opcode
            body.append(opcode & 0xFF)
            if opcode in invoke_ops:
                operand = instruction.operand
                body += pack_u32(intern(operand.class_name))
                body += pack_u32(intern(operand.method_name))
                body += pack_u32(intern(operand.descriptor))
            elif opcode in string_ops:
                body += pack_u32(intern(instruction.operand))
            elif opcode in int_ops:
                body += pack_i32(int(instruction.operand or 0))
            elif opcode in field_ops:
                class_name, field_name = instruction.operand
                body += pack_u32(intern(class_name))
                body += pack_u32(intern(field_name))

    header = bytearray(CLASS_MAGIC)
    header += pack_u32(len(strings))
    for value in strings:
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise DexError("string too long for pool: %d bytes"
                           % len(encoded))
        header += pack_u16(len(encoded))
        header += encoded
    return bytes(header + body)


def class_digest(dex_class):
    """SHA-256 hex digest of a class's canonical encoding."""
    return sha256_hex(serialize_class(dex_class))


def deserialize_dex(data):
    """Parse bytes produced by :func:`serialize_dex` back into a DexFile.

    This is the first thing the analysis pipeline does to every APK, so
    the inner loops are hand-inlined: direct ``unpack_from`` on a local
    offset instead of :class:`_Reader` method calls, dict-based opcode
    dispatch instead of the enum constructor, and a trusted-path
    :class:`Instruction` build that skips re-validating operand shapes
    the wire format already guarantees.
    """
    if not data.startswith(DEX_MAGIC):
        raise DexError("bad dex magic")
    u16 = _U16.unpack_from
    u32 = _U32.unpack_from
    i32 = _I32.unpack_from
    u32x2 = _U32X2.unpack_from
    u32x3 = _U32X3.unpack_from
    opcode_by_value = _OPCODE_BY_VALUE
    invoke_ops = INVOKE_OPCODES
    string_ops = _STRING_OPERAND_OPCODES
    int_ops = _INT_OPERAND_OPCODES
    field_ops = _FIELD_OPERAND_OPCODES
    new_instruction = Instruction.__new__
    flag_cache = {}
    offset = len(DEX_MAGIC)
    try:
        (string_count,) = u32(data, offset)
        offset += 4
        strings = []
        for _ in range(string_count):
            (length,) = u16(data, offset)
            offset += 2
            chunk = data[offset: offset + length]
            if len(chunk) != length:
                raise DexError("truncated dex data")
            offset += length
            strings.append(chunk.decode("utf-8"))
        (class_count,) = u32(data, offset)
        offset += 4
        classes = []
        for _ in range(class_count):
            name_i, super_i, source_i = u32x3(data, offset)
            (flags_value,) = u32(data, offset + 12)
            offset += 16
            flags = flag_cache.get(flags_value)
            if flags is None:
                flags = flag_cache[flags_value] = AccessFlag(flags_value)
            (interface_count,) = u16(data, offset)
            offset += 2
            interfaces = []
            for _ in range(interface_count):
                (interface_i,) = u32(data, offset)
                offset += 4
                interfaces.append(strings[interface_i])
            (field_count,) = u16(data, offset)
            offset += 2
            fields = []
            for _ in range(field_count):
                field_name_i, type_i = u32x2(data, offset)
                (field_flags,) = u32(data, offset + 8)
                offset += 12
                fields.append(
                    DexField(strings[field_name_i], strings[type_i],
                             AccessFlag(field_flags))
                )
            (method_count,) = u16(data, offset)
            offset += 2
            methods = []
            for _ in range(method_count):
                method_name_i, descriptor_i = u32x2(data, offset)
                method_flags, instruction_count = u32x2(data, offset + 8)
                offset += 16
                instructions = []
                for _ in range(instruction_count):
                    opcode_value = data[offset]
                    offset += 1
                    opcode = opcode_by_value.get(opcode_value)
                    if opcode is None:
                        raise DexError("unknown opcode: %d" % opcode_value)
                    if opcode in invoke_ops:
                        class_i, ref_name_i, descr_i = u32x3(data, offset)
                        offset += 12
                        operand = MethodRef(strings[class_i],
                                            strings[ref_name_i],
                                            strings[descr_i])
                    elif opcode in string_ops:
                        (operand_i,) = u32(data, offset)
                        offset += 4
                        operand = strings[operand_i]
                    elif opcode in int_ops:
                        (operand,) = i32(data, offset)
                        offset += 4
                    elif opcode in field_ops:
                        class_i, field_i = u32x2(data, offset)
                        offset += 8
                        operand = (strings[class_i], strings[field_i])
                    else:
                        operand = None
                    instruction = new_instruction(Instruction)
                    instruction.opcode = opcode
                    instruction.operand = operand
                    instructions.append(instruction)
                method_flag = flag_cache.get(method_flags)
                if method_flag is None:
                    method_flag = flag_cache[method_flags] = (
                        AccessFlag(method_flags)
                    )
                methods.append(
                    DexMethod(strings[method_name_i], strings[descriptor_i],
                              method_flag, instructions)
                )
            classes.append(
                DexClass(
                    strings[name_i],
                    superclass=strings[super_i],
                    interfaces=interfaces,
                    flags=flags,
                    fields=fields,
                    methods=methods,
                    source_file=strings[source_i],
                )
            )
    except (IndexError, struct.error) as exc:
        raise DexError("corrupt dex data: %s" % exc)
    return DexFile(classes)
