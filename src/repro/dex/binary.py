"""Binary (de)serialization for the simplified DEX format.

Layout (all integers little-endian):

    magic            6 bytes  (b"sdex\\x01\\x00")
    string_pool_len  u32
    string_pool      repeated (u16 length, utf-8 bytes)
    class_count      u32
    classes          repeated class records

String-bearing fields (class names, method names, descriptors, string
constants) are stored as u32 indexes into the shared string pool, like a
real DEX file's string_ids section.
"""

import struct

from repro.dex.constants import DEX_MAGIC, Opcode, AccessFlag
from repro.dex.model import (
    DexClass,
    DexField,
    DexFile,
    DexMethod,
    Instruction,
    MethodRef,
)
from repro.errors import DexError

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")


class _Writer:
    def __init__(self):
        self.parts = []

    def u8(self, value):
        self.parts.append(bytes([value & 0xFF]))

    def u16(self, value):
        self.parts.append(_U16.pack(value))

    def u32(self, value):
        self.parts.append(_U32.pack(value))

    def i32(self, value):
        self.parts.append(_I32.pack(value))

    def raw(self, data):
        self.parts.append(data)

    def getvalue(self):
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data):
        self.data = data
        self.offset = 0

    def u8(self):
        value = self.data[self.offset]
        self.offset += 1
        return value

    def u16(self):
        (value,) = _U16.unpack_from(self.data, self.offset)
        self.offset += 2
        return value

    def u32(self):
        (value,) = _U32.unpack_from(self.data, self.offset)
        self.offset += 4
        return value

    def i32(self):
        (value,) = _I32.unpack_from(self.data, self.offset)
        self.offset += 4
        return value

    def raw(self, length):
        chunk = self.data[self.offset: self.offset + length]
        if len(chunk) != length:
            raise DexError("truncated dex data")
        self.offset += length
        return chunk


class _StringPool:
    def __init__(self):
        self.strings = []
        self.index = {}

    def intern(self, value):
        if value in self.index:
            return self.index[value]
        position = len(self.strings)
        self.strings.append(value)
        self.index[value] = position
        return position


def _collect_strings(dex_file, pool):
    for dex_class in dex_file.classes:
        pool.intern(dex_class.name)
        pool.intern(dex_class.superclass or "java.lang.Object")
        pool.intern(dex_class.source_file)
        for interface in dex_class.interfaces:
            pool.intern(interface)
        for field in dex_class.fields:
            pool.intern(field.name)
            pool.intern(field.type_name)
        for method in dex_class.methods:
            pool.intern(method.name)
            pool.intern(method.descriptor)
            for instruction in method.instructions:
                operand = instruction.operand
                if isinstance(operand, MethodRef):
                    pool.intern(operand.class_name)
                    pool.intern(operand.method_name)
                    pool.intern(operand.descriptor)
                elif isinstance(operand, str):
                    pool.intern(operand)


def _write_instruction(writer, pool, instruction):
    writer.u8(int(instruction.opcode))
    operand = instruction.operand
    if instruction.opcode.is_invoke:
        writer.u32(pool.intern(operand.class_name))
        writer.u32(pool.intern(operand.method_name))
        writer.u32(pool.intern(operand.descriptor))
    elif instruction.opcode in (Opcode.CONST_STRING, Opcode.NEW_INSTANCE):
        writer.u32(pool.intern(operand))
    elif instruction.opcode in (Opcode.CONST_INT, Opcode.IF_EQZ,
                                Opcode.IF_NEZ, Opcode.GOTO):
        writer.i32(int(operand or 0))
    elif instruction.opcode in (Opcode.IGET, Opcode.IPUT,
                                Opcode.SGET, Opcode.SPUT):
        class_name, field_name = operand
        writer.u32(pool.intern(class_name))
        writer.u32(pool.intern(field_name))
    else:
        # No operand: NOP, RETURN*, THROW, MOVE, MOVE_RESULT.
        pass


def _read_instruction(reader, strings):
    try:
        opcode = Opcode(reader.u8())
    except ValueError as exc:
        raise DexError("unknown opcode: %s" % exc)
    if opcode.is_invoke:
        ref = MethodRef(
            strings[reader.u32()], strings[reader.u32()], strings[reader.u32()]
        )
        return Instruction(opcode, ref)
    if opcode in (Opcode.CONST_STRING, Opcode.NEW_INSTANCE):
        return Instruction(opcode, strings[reader.u32()])
    if opcode in (Opcode.CONST_INT, Opcode.IF_EQZ, Opcode.IF_NEZ, Opcode.GOTO):
        return Instruction(opcode, reader.i32())
    if opcode in (Opcode.IGET, Opcode.IPUT, Opcode.SGET, Opcode.SPUT):
        return Instruction(opcode, (strings[reader.u32()], strings[reader.u32()]))
    return Instruction(opcode)


def serialize_dex(dex_file):
    """Serialize a :class:`DexFile` to bytes."""
    pool = _StringPool()
    _collect_strings(dex_file, pool)

    body = _Writer()
    body.u32(len(dex_file.classes))
    for dex_class in dex_file.classes:
        body.u32(pool.intern(dex_class.name))
        body.u32(pool.intern(dex_class.superclass or "java.lang.Object"))
        body.u32(pool.intern(dex_class.source_file))
        body.u32(int(dex_class.flags))
        body.u16(len(dex_class.interfaces))
        for interface in dex_class.interfaces:
            body.u32(pool.intern(interface))
        body.u16(len(dex_class.fields))
        for field in dex_class.fields:
            body.u32(pool.intern(field.name))
            body.u32(pool.intern(field.type_name))
            body.u32(int(field.flags))
        body.u16(len(dex_class.methods))
        for method in dex_class.methods:
            body.u32(pool.intern(method.name))
            body.u32(pool.intern(method.descriptor))
            body.u32(int(method.flags))
            body.u32(len(method.instructions))
            for instruction in method.instructions:
                _write_instruction(body, pool, instruction)

    header = _Writer()
    header.raw(DEX_MAGIC)
    header.u32(len(pool.strings))
    for value in pool.strings:
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise DexError("string too long for pool: %d bytes" % len(encoded))
        header.u16(len(encoded))
        header.raw(encoded)
    return header.getvalue() + body.getvalue()


def deserialize_dex(data):
    """Parse bytes produced by :func:`serialize_dex` back into a DexFile."""
    if not data.startswith(DEX_MAGIC):
        raise DexError("bad dex magic")
    reader = _Reader(data)
    reader.raw(len(DEX_MAGIC))
    try:
        string_count = reader.u32()
        strings = []
        for _ in range(string_count):
            length = reader.u16()
            strings.append(reader.raw(length).decode("utf-8"))
        class_count = reader.u32()
        classes = []
        for _ in range(class_count):
            name = strings[reader.u32()]
            superclass = strings[reader.u32()]
            source_file = strings[reader.u32()]
            flags = AccessFlag(reader.u32())
            interfaces = [strings[reader.u32()] for _ in range(reader.u16())]
            fields = []
            for _ in range(reader.u16()):
                fields.append(
                    DexField(
                        strings[reader.u32()],
                        strings[reader.u32()],
                        AccessFlag(reader.u32()),
                    )
                )
            methods = []
            for _ in range(reader.u16()):
                method_name = strings[reader.u32()]
                descriptor = strings[reader.u32()]
                method_flags = AccessFlag(reader.u32())
                instruction_count = reader.u32()
                instructions = [
                    _read_instruction(reader, strings)
                    for _ in range(instruction_count)
                ]
                methods.append(
                    DexMethod(method_name, descriptor, method_flags, instructions)
                )
            classes.append(
                DexClass(
                    name,
                    superclass=superclass,
                    interfaces=interfaces,
                    flags=flags,
                    fields=fields,
                    methods=methods,
                    source_file=source_file,
                )
            )
    except (IndexError, struct.error) as exc:
        raise DexError("corrupt dex data: %s" % exc)
    return DexFile(classes)
