"""Fluent builders for emitting simplified-DEX classes.

The corpus generator uses these to synthesize app and SDK code, e.g.::

    cls = ClassBuilder("com.example.ads.AdWebActivity",
                       superclass="android.app.Activity")
    method = cls.method("onCreate", "(android.os.Bundle)void")
    method.new_instance("android.webkit.WebView")
    method.const_string("https://ads.example.com/banner")
    method.invoke_virtual("android.webkit.WebView", "loadUrl",
                          "(java.lang.String)void")
    method.return_void()
    dex_class = cls.build()
"""

from repro.dex.constants import AccessFlag, Opcode
from repro.dex.model import (
    DexClass,
    DexField,
    DexMethod,
    Instruction,
    MethodRef,
)


class MethodBuilder:
    """Accumulates instructions for one method."""

    def __init__(self, class_builder, name, descriptor, flags):
        self._class_builder = class_builder
        self.name = name
        self.descriptor = descriptor
        self.flags = flags
        self.instructions = []

    def emit(self, opcode, operand=None):
        self.instructions.append(Instruction(opcode, operand))
        return self

    def nop(self):
        return self.emit(Opcode.NOP)

    def const_string(self, value):
        return self.emit(Opcode.CONST_STRING, value)

    def const_int(self, value):
        return self.emit(Opcode.CONST_INT, value)

    def new_instance(self, class_name):
        return self.emit(Opcode.NEW_INSTANCE, class_name)

    def invoke_virtual(self, class_name, method_name, descriptor="()void"):
        return self.emit(
            Opcode.INVOKE_VIRTUAL, MethodRef(class_name, method_name, descriptor)
        )

    def invoke_static(self, class_name, method_name, descriptor="()void"):
        return self.emit(
            Opcode.INVOKE_STATIC, MethodRef(class_name, method_name, descriptor)
        )

    def invoke_direct(self, class_name, method_name, descriptor="()void"):
        return self.emit(
            Opcode.INVOKE_DIRECT, MethodRef(class_name, method_name, descriptor)
        )

    def invoke_super(self, class_name, method_name, descriptor="()void"):
        return self.emit(
            Opcode.INVOKE_SUPER, MethodRef(class_name, method_name, descriptor)
        )

    def invoke_interface(self, class_name, method_name, descriptor="()void"):
        return self.emit(
            Opcode.INVOKE_INTERFACE, MethodRef(class_name, method_name, descriptor)
        )

    def call(self, ref):
        """Invoke an arbitrary :class:`MethodRef` virtually."""
        return self.emit(Opcode.INVOKE_VIRTUAL, ref)

    def iget(self, class_name, field_name):
        return self.emit(Opcode.IGET, (class_name, field_name))

    def iput(self, class_name, field_name):
        return self.emit(Opcode.IPUT, (class_name, field_name))

    def sget(self, class_name, field_name):
        return self.emit(Opcode.SGET, (class_name, field_name))

    def sput(self, class_name, field_name):
        return self.emit(Opcode.SPUT, (class_name, field_name))

    def move_result(self):
        return self.emit(Opcode.MOVE_RESULT)

    def return_void(self):
        return self.emit(Opcode.RETURN_VOID)

    def return_value(self):
        return self.emit(Opcode.RETURN)

    def done(self):
        """Return the parent class builder (for chaining)."""
        return self._class_builder

    def build(self):
        return DexMethod(self.name, self.descriptor, self.flags,
                         self.instructions)


class ClassBuilder:
    """Accumulates fields and methods for one class."""

    def __init__(self, name, superclass="java.lang.Object", interfaces=None,
                 flags=AccessFlag.PUBLIC):
        self.name = name
        self.superclass = superclass
        self.interfaces = list(interfaces or [])
        self.flags = flags
        self._fields = []
        self._methods = []

    def field(self, name, type_name, flags=AccessFlag.PRIVATE):
        self._fields.append(DexField(name, type_name, flags))
        return self

    def method(self, name, descriptor="()void", flags=AccessFlag.PUBLIC):
        builder = MethodBuilder(self, name, descriptor, flags)
        self._methods.append(builder)
        return builder

    def constructor(self, descriptor="()void"):
        return self.method(
            "<init>", descriptor, AccessFlag.PUBLIC | AccessFlag.CONSTRUCTOR
        )

    def build(self):
        return DexClass(
            self.name,
            superclass=self.superclass,
            interfaces=self.interfaces,
            flags=self.flags,
            fields=list(self._fields),
            methods=[m.build() for m in self._methods],
        )
