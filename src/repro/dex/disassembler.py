"""Smali-style text disassembly for simplified DEX.

Baksmali/Androguard expose dex as readable assembly; analysts use it when
decompiled Java is unavailable (heavily obfuscated classes). This module
renders our simplified-DEX classes in the same spirit — one ``.class``
block per class with typed method frames — and parses the format back,
giving the toolchain a second, bytecode-level round-trip besides Java.
"""

from repro.dex.constants import AccessFlag, Opcode
from repro.dex.model import (
    DexClass,
    DexField,
    DexFile,
    DexMethod,
    Instruction,
    MethodRef,
)
from repro.errors import DexError

_FLAG_NAMES = (
    (AccessFlag.PUBLIC, "public"),
    (AccessFlag.PRIVATE, "private"),
    (AccessFlag.PROTECTED, "protected"),
    (AccessFlag.STATIC, "static"),
    (AccessFlag.FINAL, "final"),
    (AccessFlag.INTERFACE, "interface"),
    (AccessFlag.ABSTRACT, "abstract"),
    (AccessFlag.SYNTHETIC, "synthetic"),
    (AccessFlag.CONSTRUCTOR, "constructor"),
)


def _flags_text(flags):
    return " ".join(name for flag, name in _FLAG_NAMES if flags & flag)


def _parse_flags(words):
    flags = AccessFlag(0)
    lookup = {name: flag for flag, name in _FLAG_NAMES}
    for word in words:
        if word not in lookup:
            raise DexError("unknown access flag %r" % word)
        flags |= lookup[word]
    return flags


#: Characters that str.splitlines() treats as line boundaries (beyond
#: \n/\r) — all must be escaped to keep the format line-based.
_LINE_BREAKERS = "\v\f\x1c\x1d\x1e\x85\u2028\u2029"


def _escape(text):
    out = []
    for char in text:
        if char == "\\":
            out.append("\\\\")
        elif char == '"':
            out.append('\\"')
        elif char == "\n":
            out.append("\\n")
        elif char == "\r":
            out.append("\\r")
        elif char == "\t":
            out.append("\\t")
        elif ord(char) < 0x20 or char in _LINE_BREAKERS:
            out.append("\\u%04x" % ord(char))
        else:
            out.append(char)
    return "".join(out)


def _unescape(text):
    out = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escape = text[index + 1]
            if escape == "u" and index + 5 < len(text):
                try:
                    out.append(chr(int(text[index + 2: index + 6], 16)))
                    index += 6
                    continue
                except ValueError:
                    pass
            mapping = {"\\": "\\", '"': '"', "n": "\n", "r": "\r",
                       "t": "\t"}
            out.append(mapping.get(escape, escape))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def disassemble_class(dex_class):
    """Render one class as smali-style text."""
    lines = []
    flags = _flags_text(dex_class.flags)
    lines.append(".class %s%s" % (flags + " " if flags else "",
                                  dex_class.name))
    lines.append(".super %s" % (dex_class.superclass or "java.lang.Object"))
    for interface in dex_class.interfaces:
        lines.append(".implements %s" % interface)
    lines.append(".source \"%s\"" % _escape(dex_class.source_file))
    for field in dex_class.fields:
        field_flags = _flags_text(field.flags)
        lines.append(".field %s%s:%s" % (
            field_flags + " " if field_flags else "", field.name,
            field.type_name,
        ))
    for method in dex_class.methods:
        method_flags = _flags_text(method.flags)
        lines.append(".method %s%s%s" % (
            method_flags + " " if method_flags else "", method.name,
            method.descriptor,
        ))
        for instruction in method.instructions:
            lines.append("    " + _instruction_text(instruction))
        lines.append(".end method")
    lines.append(".end class")
    return "\n".join(lines) + "\n"


def _instruction_text(instruction):
    opcode = instruction.opcode
    mnemonic = opcode.name.lower().replace("_", "-")
    operand = instruction.operand
    if opcode.is_invoke:
        return "%s {%s->%s%s}" % (
            mnemonic, operand.class_name, operand.method_name,
            operand.descriptor,
        )
    if opcode == Opcode.CONST_STRING:
        return '%s "%s"' % (mnemonic, _escape(operand))
    if opcode == Opcode.NEW_INSTANCE:
        return "%s %s" % (mnemonic, operand)
    if opcode in (Opcode.CONST_INT, Opcode.IF_EQZ, Opcode.IF_NEZ,
                  Opcode.GOTO):
        return "%s %d" % (mnemonic, operand or 0)
    if opcode in (Opcode.IGET, Opcode.IPUT, Opcode.SGET, Opcode.SPUT):
        return "%s %s->%s" % (mnemonic, operand[0], operand[1])
    return mnemonic


def disassemble(dex_file):
    """Render a whole DexFile."""
    return "\n".join(disassemble_class(c) for c in dex_file.classes)


# -- assembler (text -> model) --------------------------------------------------

def assemble(text):
    """Parse smali-style text back into a :class:`DexFile`."""
    classes = []
    current = None
    current_method = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".class "):
            words = line[len(".class "):].split()
            current = DexClass(words[-1], flags=_parse_flags(words[:-1]))
            classes.append(current)
        elif line.startswith(".super "):
            _require(current, line)
            current.superclass = line[len(".super "):].strip()
        elif line.startswith(".implements "):
            _require(current, line)
            current.interfaces.append(line[len(".implements "):].strip())
        elif line.startswith(".source "):
            _require(current, line)
            current.source_file = _unescape(
                line[len(".source "):].strip().strip('"')
            )
        elif line.startswith(".field "):
            _require(current, line)
            body = line[len(".field "):]
            words = body.split()
            name_and_type = words[-1]
            if ":" not in name_and_type:
                raise DexError("malformed field line: %r" % line)
            name, type_name = name_and_type.split(":", 1)
            current.fields.append(
                DexField(name, type_name, _parse_flags(words[:-1]))
            )
        elif line.startswith(".method "):
            _require(current, line)
            body = line[len(".method "):]
            words = body.split()
            signature = words[-1]
            paren = signature.index("(")
            current_method = DexMethod(
                signature[:paren], signature[paren:],
                _parse_flags(words[:-1]),
            )
            current.methods.append(current_method)
        elif line == ".end method":
            current_method = None
        elif line == ".end class":
            current = None
        elif current_method is not None:
            current_method.instructions.append(_parse_instruction(line))
        else:
            raise DexError("unexpected line outside method: %r" % line)
    return DexFile(classes)


def _require(current, line):
    if current is None:
        raise DexError("directive outside .class: %r" % line)


def _parse_instruction(line):
    parts = line.split(None, 1)
    mnemonic = parts[0]
    try:
        opcode = Opcode[mnemonic.upper().replace("-", "_")]
    except KeyError:
        raise DexError("unknown mnemonic %r" % mnemonic)
    rest = parts[1] if len(parts) > 1 else ""
    if opcode.is_invoke:
        inner = rest.strip()
        if not (inner.startswith("{") and inner.endswith("}")):
            raise DexError("malformed invoke operand: %r" % line)
        inner = inner[1:-1]
        class_name, remainder = inner.split("->", 1)
        paren = remainder.index("(")
        return Instruction(opcode, MethodRef(
            class_name, remainder[:paren], remainder[paren:],
        ))
    if opcode == Opcode.CONST_STRING:
        value = rest.strip()
        if not (value.startswith('"') and value.endswith('"')):
            raise DexError("malformed string operand: %r" % line)
        return Instruction(opcode, _unescape(value[1:-1]))
    if opcode == Opcode.NEW_INSTANCE:
        return Instruction(opcode, rest.strip())
    if opcode in (Opcode.CONST_INT, Opcode.IF_EQZ, Opcode.IF_NEZ,
                  Opcode.GOTO):
        return Instruction(opcode, int(rest.strip()))
    if opcode in (Opcode.IGET, Opcode.IPUT, Opcode.SGET, Opcode.SPUT):
        class_name, field_name = rest.strip().split("->", 1)
        return Instruction(opcode, (class_name, field_name))
    return Instruction(opcode)
